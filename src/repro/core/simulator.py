"""The VPPB Simulator (§3.2).

Drives thread behaviours over the Solaris scheduling model:

* each running thread is executed as a sequence of *steps* — a CPU burst
  followed by one thread-library operation;
* the operation's cost (from the :class:`~repro.solaris.costs.CostModel`,
  with the paper's bound-thread multipliers) is charged as CPU time at the
  end of the burst, then its semantics are applied against the simulated
  synchronisation objects;
* blocking operations take the thread off its processor; the return from
  the call (and its return-probe overhead, when recording) happens when the
  thread is scheduled again — exactly the timing a real interposed library
  exhibits.

The same class performs three roles from the paper's figure 1:

* **monitored uni-processor execution** — ``Simulator(uniprocessor config,
  probe=Recorder)`` running a live program *is* the Recorder run: the probe
  writes the log and its overhead is charged into the simulated timeline
  (that is the §4 "intrusion");
* **ground-truth multiprocessor execution** — a live program on an N-CPU
  configuration (optionally with OS-noise perturbation) stands in for the
  paper's real Sun E4000 runs;
* **prediction** — a :class:`ReplayPlan` compiled from a recorded trace by
  :mod:`repro.core.predictor` replayed under any configuration.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass, field
from heapq import heappush
from typing import Callable, Dict, Iterator, List, Optional, Protocol, Tuple

from repro.core.config import SimConfig
from repro.core.engine import Engine, Watchdog
from repro.core.errors import (
    BudgetExceededError,
    DeadlockError,
    LivelockError,
    ProgramError,
    ReplayDivergenceError,
    SimulationError,
)
from repro.core.events import EventRecord, Phase, Primitive, Status
from repro.core.ids import MAIN_THREAD_ID, ThreadId
from repro.core.result import (
    Incompleteness,
    ResultBuilder,
    RunStatus,
    SimulationResult,
    ThreadSummary,
)
from repro.program import ops as op_mod
from repro.program.behavior import LiveBehavior, ReplayBehavior, Step, ThreadBehavior
from repro.program.program import Program, ThreadCtx
from repro.solaris.scheduler import Scheduler
from repro.solaris.sync import NO_RESULT, SyncObjectTable
from repro.solaris.thread_model import (
    DEFAULT_USER_PRIORITY,
    SimThread,
    ThreadState,
)

__all__ = ["ProbeAPI", "ReplayThreadMeta", "ReplayPlan", "Simulator", "simulate_program"]


class ProbeAPI(Protocol):
    """What the Simulator needs from a Recorder probe (§3.1)."""

    @property
    def overhead_us(self) -> int:
        """CPU time one probe record costs the monitored program."""
        ...

    def record(self, rec: EventRecord) -> None:
        """Store one log record."""

    def note_thread_function(self, tid: int, func_name: str) -> None:
        """Remember the start routine passed to ``thr_create``."""


@dataclass(frozen=True)
class ReplayThreadMeta:
    """Per-thread attributes reconstructed from a trace."""

    tid: int
    func_name: str = ""
    bound: bool = False


# ---------------------------------------------------------------------------
# compiled replay plans (the fast interpreter's instruction set)
# ---------------------------------------------------------------------------

#: Op type → (opcode, Simulator handler attribute).  The opcode is the
#: index into the per-run pre-bound handler table; ``_f_*`` handlers are
#: fast-path specialisations, the remaining entries reuse the legacy
#: ``_h_*`` methods (blocking/rare ops whose cost is not per-step).
_FAST_DISPATCH: List[Tuple[type, str]] = [
    (op_mod.MutexLock, "_f_mutex_lock"),
    (op_mod.MutexTrylock, "_f_mutex_trylock"),
    (op_mod.MutexUnlock, "_f_mutex_unlock"),
    (op_mod.SemaInit, "_f_sema_init"),
    (op_mod.SemaWait, "_f_sema_wait"),
    (op_mod.SemaTryWait, "_f_sema_trywait"),
    (op_mod.SemaPost, "_f_sema_post"),
    (op_mod.CondWait, "_h_cond_wait"),
    (op_mod.CondTimedWait, "_h_cond_timedwait"),
    (op_mod.CondSignal, "_f_cond_signal"),
    (op_mod.CondBroadcast, "_f_cond_broadcast"),
    (op_mod.RwRdLock, "_f_rw_rdlock"),
    (op_mod.RwWrLock, "_f_rw_wrlock"),
    (op_mod.RwTryRdLock, "_f_rw_tryrdlock"),
    (op_mod.RwTryWrLock, "_f_rw_trywrlock"),
    (op_mod.RwUnlock, "_f_rw_unlock"),
    (op_mod.Resched, "_h_resched"),
    (op_mod.Delay, "_h_delay"),
    (op_mod.IoWait, "_h_io_wait"),
    (op_mod.Noop, "_f_noop"),
    (op_mod.SharedRead, "_f_shared_access"),
    (op_mod.SharedWrite, "_f_shared_access"),
    (op_mod.ThrCreate, "_h_thr_create"),
    (op_mod.ThrJoin, "_h_thr_join"),
    (op_mod.ThrExit, "_h_thr_exit"),
    (op_mod.ThrYield, "_h_thr_yield"),
    (op_mod.ThrSetPrio, "_f_thr_setprio"),
    (op_mod.ThrSetConcurrency, "_f_thr_setconcurrency"),
]

_OPCODE_OF: Dict[type, int] = {
    cls: code for code, (cls, _) in enumerate(_FAST_DISPATCH)
}

#: Primitive → index into the per-run cost rows (0 = "no primitive").
_PRIM_IDX: Dict[Primitive, int] = {p: i + 1 for i, p in enumerate(Primitive)}

# opcodes the deferred-return path special-cases (timeout status, wildcard
# join target) — int compares instead of isinstance in the hot loop
_CODE_COND_TIMEDWAIT = _OPCODE_OF[op_mod.CondTimedWait]
_CODE_THR_JOIN = _OPCODE_OF[op_mod.ThrJoin]

#: ops whose sync object can be resolved once per run instead of per
#: execution: creation takes no parameters for these kinds, so resolving
#: (and so creating) early is invisible in the result.  Semaphores are
#: excluded — sema() uses the initial count only at creation, so first
#: touch must stay at execution time.  Index into _attach_fast's resolver
#: tuple: 1 = mutex, 2 = condvar, 3 = rwlock.  Steps are compiled to
#: small-int *slots* (one per distinct object a thread touches) so a
#: replay resolves each object once, not once per step.
_SYNC_KIND: Dict[type, int] = {
    op_mod.MutexLock: 1,
    op_mod.MutexTrylock: 1,
    op_mod.MutexUnlock: 1,
    op_mod.CondSignal: 2,
    op_mod.CondBroadcast: 2,
    op_mod.RwRdLock: 3,
    op_mod.RwWrLock: 3,
    op_mod.RwTryRdLock: 3,
    op_mod.RwTryWrLock: 3,
    op_mod.RwUnlock: 3,
}


class CompiledThread:
    """One thread's step list lowered to flat parallel arrays.

    Built once per :class:`ReplayPlan` and shared by every replay of the
    plan: small-int op-codes (indices into the simulator's pre-bound
    handler table), burst work, cost-table primitive indices, and the
    per-step constants the placed events need (sync-object id, target
    tid) so the hot loop touches no op attributes or properties.  The
    original ``Op`` objects ride along because completion events carry
    ``op.source`` and the handlers apply op semantics.
    """

    __slots__ = (
        "codes", "works", "prims", "ops", "objs", "targets",
        "sync_slots", "slot_specs", "create_idx", "src_len", "n",
    )

    def __init__(self, steps: List[Step]):
        seq = list(steps)
        self.src_len = len(steps)
        if not seq or type(seq[-1].op) is not op_mod.ThrExit:
            # the legacy path synthesises Step(0, ThrExit()) when a
            # behaviour runs dry; bake the same sentinel in
            seq.append(Step(0, op_mod.ThrExit()))
        ops = tuple(s.op for s in seq)
        self.ops = ops
        self.works = tuple(s.work_us for s in seq)
        self.codes = tuple(_OPCODE_OF[type(op)] for op in ops)
        self.prims = tuple(
            0 if op.primitive is None else _PRIM_IDX[op.primitive] for op in ops
        )
        self.objs = tuple(op.obj for op in ops)
        self.targets = tuple(Simulator._op_target(op) for op in ops)
        # per-step sync slot: 0 = none, j >= 1 indexes slot_specs[j - 1]
        slot_of: Dict[Tuple[int, str], int] = {}
        specs: List[Tuple[int, str]] = []
        slots = []
        for op in ops:
            kind = _SYNC_KIND.get(type(op), 0)
            if kind:
                key = (kind, op.name)
                j = slot_of.get(key)
                if j is None:
                    j = slot_of[key] = len(specs) + 1
                    specs.append(key)
                slots.append(j)
            else:
                slots.append(0)
        self.sync_slots = tuple(slots)
        self.slot_specs = tuple(specs)
        #: steps whose cost needs the child policy (thr_create, §3.2)
        self.create_idx = tuple(
            i for i, op in enumerate(ops) if type(op) is op_mod.ThrCreate
        )
        self.n = len(seq)


def _compile_steps(steps: List[Step]) -> Optional[CompiledThread]:
    """Lower one thread's steps; None when an op type is not compilable
    (an Op subclass outside the vocabulary — the plan then replays on the
    legacy object-walking path)."""
    for step in steps:
        if type(step.op) not in _OPCODE_OF:
            return None
    return CompiledThread(steps)


@dataclass
class ReplayPlan:
    """A compiled trace: per-thread step lists plus thread attributes.

    Produced by :func:`repro.core.predictor.compile_trace`; consumed by
    :meth:`Simulator.run_replay`.  Construction eagerly lowers every
    thread's steps into a :class:`CompiledThread` (``compiled``) for the
    fast replay interpreter, and caches ``total_steps()`` /
    ``event_count``.  Do not mutate ``steps`` in place afterwards — build
    a new plan instead (the fault-injection and what-if transforms do).
    """

    steps: Dict[int, List[Step]]
    meta: Dict[int, ReplayThreadMeta]
    program_name: str = "a.out"

    def __post_init__(self) -> None:
        total = 0
        compiled: Optional[Dict[int, CompiledThread]] = {}
        for tid, steps in self.steps.items():
            total += len(steps)
            if compiled is not None:
                ct = _compile_steps(steps)
                compiled = None if ct is None else compiled
                if compiled is not None:
                    compiled[tid] = ct
        self._total_steps = total
        #: number of recorded library calls the plan replays (one placed
        #: event per step) — what watchdog event budgets and the replay
        #: benchmark size themselves against
        self.event_count = total
        self.compiled = compiled

    def total_steps(self) -> int:
        return self._total_steps

    def fast_replayable(self) -> bool:
        """True when every thread lowered and the step lists still match
        the compiled form (guards against in-place mutation)."""
        if self.compiled is None:
            return False
        for tid, steps in self.steps.items():
            ct = self.compiled.get(tid)
            if ct is None or ct.src_len != len(steps):
                return False
        return True


# ---------------------------------------------------------------------------


class _ThreadRt:
    """Transient per-thread simulation state (slots: hot-loop attribute
    access and no per-thread ``__dict__``).

    The ``c_*`` fields alias the thread's :class:`CompiledThread` arrays
    plus the per-run cost array; ``cur_*`` cache the in-flight step's
    constants so completion never re-derives them from the op.
    """

    __slots__ = (
        "behavior", "ctx", "current_op", "op_cost_us", "op_call_time_us",
        "pending_ret", "pending_result", "extra_us", "started",
        # fast-interpreter state
        "pos", "c_codes", "c_works", "c_costs", "c_objs", "c_targets",
        "c_ops", "c_syncslots", "c_slotobjs",
        "cur_code", "cur_obj", "cur_target", "cur_sync",
    )

    def __init__(
        self,
        behavior: Optional[ThreadBehavior],
        ctx: Optional[ThreadCtx] = None,
    ):
        self.behavior = behavior
        self.ctx = ctx
        self.current_op: Optional[op_mod.Op] = None
        self.op_cost_us = 0
        self.op_call_time_us = 0
        #: a blocking op returned control; its RET record / placed event
        #: are due when the thread next reaches a processor
        self.pending_ret = False
        self.pending_result: object = NO_RESULT
        #: extra CPU to fold into the next burst (return-probe overhead)
        self.extra_us = 0
        self.started = False
        self.pos = 0
        self.c_codes: Optional[tuple] = None
        self.c_works: Optional[tuple] = None
        self.c_costs: Optional[list] = None
        self.c_objs: Optional[tuple] = None
        self.c_targets: Optional[tuple] = None
        self.c_ops: Optional[tuple] = None
        self.c_syncslots: Optional[tuple] = None
        self.c_slotobjs: Optional[tuple] = None
        self.cur_code = 0
        self.cur_obj = None
        self.cur_target: Optional[int] = None
        self.cur_sync: object = None


class Simulator:
    """One simulated execution (live program or trace replay)."""

    def __init__(
        self,
        config: SimConfig,
        *,
        probe: Optional[ProbeAPI] = None,
        perturb: Optional[Callable[[int], int]] = None,
        max_events: int = 50_000_000,
        watchdog: Optional[Watchdog] = None,
        strict: bool = True,
    ):
        self.config = config
        self.probe = probe
        self.perturb = perturb
        self.strict = strict
        self.engine = Engine(max_events=max_events, watchdog=watchdog)
        self.builder = ResultBuilder(config)
        self.scheduler = Scheduler(self.engine, config, self.builder, self)
        self.sync = SyncObjectTable()

        self.threads: Dict[int, SimThread] = {}
        self._rt: Dict[int, _ThreadRt] = {}
        self._next_tid = itertools.count(4)  # Solaris hands user threads 4, 5, ...
        self._block_reason: Dict[int, str] = {}
        self._current_cpu: Optional[int] = None

        # join bookkeeping
        self._zombie_order: List[int] = []
        self._joiners: Dict[int, List[SimThread]] = {}
        self._wildcard_joiners: List[SimThread] = []

        # live-program context
        self._program: Optional[Program] = None
        self._shared: Optional[dict] = None
        # replay context
        self._replay_plan: Optional[ReplayPlan] = None

        # fast-interpreter state (armed by _setup_fast)
        self._fast = False
        self._fh: Optional[list] = None
        self._cost_rows: Optional[tuple] = None
        self._ev_list: Optional[list] = None
        self._begin_burst: Optional[Callable[[SimThread, int], None]] = None
        self._sched_pending: Optional[dict] = None
        self._sched_bursts: Optional[dict] = None
        self._heap: Optional[list] = None
        self._evseq: Optional[Iterator[int]] = None

        self._finished = False

    # ==================================================================
    # public entry points
    # ==================================================================

    def run_program(self, program: Program) -> SimulationResult:
        """Execute a live virtual program to completion."""
        self._program = program
        self._shared = program.make_shared()
        for name, count in program.semaphores.items():
            self.sync.sema(name, count)
        ctx = ThreadCtx(
            tid=int(MAIN_THREAD_ID),
            shared=self._shared,
            rng=program.make_rng(int(MAIN_THREAD_ID)),
        )
        behavior = LiveBehavior(program.main(ctx), perturb=self.perturb)
        return self._run(behavior, ctx=ctx, program_name=program.name)

    def run_replay(
        self, plan: ReplayPlan, *, replay_engine: Optional[str] = None
    ) -> SimulationResult:
        """Replay a compiled trace (the paper's prediction run).

        ``replay_engine`` selects the interpreter: ``"fast"`` (default)
        replays the plan's :class:`CompiledThread` arrays through the
        opcode interpreter, ``"legacy"`` walks the original ``Step``
        objects.  Unset, the ``VPPB_REPLAY`` environment variable decides
        (defaulting to fast).  Both produce bit-identical results; the
        fast path silently falls back to legacy when the plan did not
        lower (op outside the vocabulary, mutated steps) or a probe is
        attached (probe overhead bookkeeping needs the object path).
        """
        self._replay_plan = plan
        if int(MAIN_THREAD_ID) not in plan.steps:
            raise SimulationError("replay plan lacks the main thread (tid 1)")
        mode = replay_engine or os.environ.get("VPPB_REPLAY") or "fast"
        if mode not in ("fast", "legacy"):
            raise SimulationError(
                f"unknown replay engine {mode!r} (expected 'fast' or 'legacy')"
            )
        if mode == "fast" and self.probe is None and plan.fast_replayable():
            self._setup_fast()
            behavior: Optional[ThreadBehavior] = None
        else:
            behavior = ReplayBehavior(plan.steps[int(MAIN_THREAD_ID)])
        return self._run(behavior, ctx=None, program_name=plan.program_name)

    # ==================================================================
    # run loop
    # ==================================================================

    def _run(
        self,
        main_behavior: Optional[ThreadBehavior],
        *,
        ctx: Optional[ThreadCtx],
        program_name: str,
    ) -> SimulationResult:
        if self._finished:
            raise SimulationError("a Simulator instance runs exactly once")
        main = SimThread(tid=MAIN_THREAD_ID, func_name="main")
        self.threads[int(MAIN_THREAD_ID)] = main
        self._rt[int(MAIN_THREAD_ID)] = _ThreadRt(behavior=main_behavior, ctx=ctx)
        if self.probe is not None:
            self._emit_marker(Primitive.START_COLLECT, main)
        self.scheduler.register_thread(main, waker_cpu=None)

        incompleteness: Optional[Incompleteness] = None
        try:
            self.engine.run()
        except (
            BudgetExceededError,
            LivelockError,
            ReplayDivergenceError,
            DeadlockError,
        ) as exc:
            if self.strict:
                self._finished = True
                raise
            incompleteness = self._downgrade(exc)
        self._finished = True

        makespan = 0
        blocked = []
        for thread in self.threads.values():
            if thread.alive:
                blocked.append(
                    f"T{int(thread.tid)} ({thread.state.value}: "
                    f"{self._block_reason.get(int(thread.tid), '?')})"
                )
            if thread.end_time_us is not None:
                makespan = max(makespan, thread.end_time_us)
        if blocked and incompleteness is None:
            blocked_tids = tuple(
                int(t.tid) for t in self.threads.values() if t.alive
            )
            message = "simulation ended with live threads: " + ", ".join(blocked)
            if self.strict:
                raise DeadlockError(message, blocked=blocked_tids)
            incompleteness = Incompleteness(
                status=RunStatus.DEADLOCK,
                reason=message,
                blocked=blocked_tids,
                cycle=self._find_blocking_cycle(),
            )
        if incompleteness is not None:
            # partial result: the timeline covers everything simulated so far
            makespan = max(makespan, self.engine.now_us)
        elif self.probe is not None:
            self.probe.record(
                EventRecord(
                    time_us=makespan,
                    tid=MAIN_THREAD_ID,
                    phase=Phase.CALL,
                    primitive=Primitive.END_COLLECT,
                )
            )
        summaries = {
            t.tid: ThreadSummary(
                tid=t.tid,
                func_name=t.func_name,
                created_at_us=t.created_at_us,
                start_us=t.start_time_us,
                end_us=t.end_time_us,
                work_us=t.cpu_time_us,
            )
            for t in self.threads.values()
        }
        return self.builder.build(
            makespan_us=makespan,
            summaries=summaries,
            engine_events=self.engine.events_executed,
            incompleteness=incompleteness,
        )

    # ==================================================================
    # graceful degradation (strict=False)
    # ==================================================================

    def _downgrade(self, exc: SimulationError) -> Incompleteness:
        """Turn a mid-run failure into a partial-result diagnosis."""
        blocked = tuple(int(t.tid) for t in self.threads.values() if t.alive)
        if isinstance(exc, BudgetExceededError):
            return Incompleteness(
                status=RunStatus.BUDGET, reason=str(exc), blocked=blocked
            )
        if isinstance(exc, ReplayDivergenceError):
            return Incompleteness(
                status=RunStatus.DIVERGED,
                reason=str(exc),
                blocked=blocked,
                divergence_tid=exc.tid,
                divergence_us=self.engine.now_us,
            )
        if isinstance(exc, DeadlockError):
            return Incompleteness(
                status=RunStatus.DEADLOCK,
                reason=str(exc),
                blocked=exc.blocked or blocked,
                cycle=self._find_blocking_cycle(),
            )
        return Incompleteness(
            status=RunStatus.LIVELOCK, reason=str(exc), blocked=blocked
        )

    def _find_blocking_cycle(self) -> tuple:
        """A cycle in the wait-for graph of blocked threads, if one exists.

        Edges: a mutex waiter waits for the owner; an rwlock waiter waits
        for the writer (or the first reader); a joiner waits for the
        joined thread.  Condition/semaphore waits have no owner, so they
        never contribute edges (those deadlocks have no cycle witness —
        the blocked set is the diagnosis).
        """
        waits_for: Dict[int, int] = {}
        for mutex in self.sync.all_mutexes().values():
            if mutex.owner is None:
                continue
            for waiter in mutex.waiters.threads():
                waits_for[int(waiter.tid)] = int(mutex.owner.tid)
        for rwlock in self.sync._rwlocks.values():
            holder = rwlock.writer or (rwlock.readers[0] if rwlock.readers else None)
            if holder is None:
                continue
            for _, waiter in rwlock._queue:
                waits_for[int(waiter.tid)] = int(holder.tid)
        for target_tid, joiners in self._joiners.items():
            for joiner in joiners:
                waits_for[int(joiner.tid)] = target_tid

        for start in waits_for:
            seen: Dict[int, int] = {}
            node = start
            pos = 0
            while node in waits_for and node not in seen:
                seen[node] = pos
                pos += 1
                node = waits_for[node]
            if node in seen:
                cycle = [t for t, p in sorted(seen.items(), key=lambda kv: kv[1])]
                return tuple(cycle[seen[node]:])
        return ()

    # ==================================================================
    # SchedulerListener
    # ==================================================================

    def need_step(self, thread: SimThread) -> None:
        """The thread reached a processor with nothing in flight."""
        rt = self._rt[int(thread.tid)]
        now = self.engine.now_us

        if not rt.started:
            rt.started = True
            if int(thread.tid) != int(MAIN_THREAD_ID):
                # the interposed start routine announces the thread (§3.1)
                self._emit_marker(Primitive.THREAD_START, thread)

        if rt.current_op is not None and not rt.pending_ret:
            # The previous burst was fully consumed, but a preemption at
            # the very same microsecond cancelled its completion event
            # before the operation could be applied.  The thread is back
            # on a processor now — apply the operation here.
            self.burst_complete(thread)
            return

        if rt.pending_ret:
            # deferred return of a blocking call: record it now
            op = rt.current_op
            assert op is not None
            status = self._ret_status(op, rt.pending_result)
            target = None
            if isinstance(op, op_mod.ThrJoin) and isinstance(rt.pending_result, int):
                target = rt.pending_result  # wildcard join: who we joined
            self._finish_op(thread, op, status, end_us=now, target=target)
            rt.pending_ret = False
            rt.current_op = None

        result = None
        if rt.pending_result is not NO_RESULT:
            result = rt.pending_result
            rt.pending_result = NO_RESULT

        step = rt.behavior.next_step(result)
        if step is None:
            step = Step(0, op_mod.ThrExit())
        self._begin_step(thread, rt, step)

    def _begin_step(self, thread: SimThread, rt: _ThreadRt, step: Step) -> None:
        op = step.op
        rt.current_op = op
        rt.op_cost_us = self._op_cost(thread, op)
        burst = step.work_us + rt.op_cost_us + rt.extra_us
        rt.extra_us = 0
        if self.probe is not None and op.primitive is not None:
            burst += self.probe.overhead_us  # the call-side probe
        self.scheduler.begin_burst(thread, burst)

    def burst_complete(self, thread: SimThread) -> None:
        """The burst (work + call cost) elapsed: apply the operation."""
        rt = self._rt[int(thread.tid)]
        op = rt.current_op
        if op is None:
            raise SimulationError(f"burst completed with no op for T{int(thread.tid)}")
        self.scheduler.begin_atomic()
        self._current_cpu = thread.last_cpu
        try:
            rt.op_call_time_us = self.engine.now_us - rt.op_cost_us
            self._emit_record(
                thread,
                op,
                Phase.CALL,
                rt.op_call_time_us,
                target=self._op_target(op),
            )
            self._apply(thread, rt, op)
        finally:
            self._current_cpu = None
            self.scheduler.end_atomic()

    # ==================================================================
    # fast replay interpreter
    # ==================================================================
    #
    # The fast path replaces the two SchedulerListener entry points with
    # interpreter loops over the plan's CompiledThread arrays: small-int
    # opcode dispatch through a pre-bound handler table, per-step costs
    # read from a precomputed row, and the probe/record plumbing (always
    # dead during prediction — probes only exist while recording) removed
    # instead of re-checked per event.  Blocking and rare ops reuse the
    # legacy ``_h_*`` handlers, which stay parity-correct here because
    # ``self.need_step`` is shadowed by :meth:`_need_step_fast` and
    # ``_emit_record`` no-ops without a probe.

    def _setup_fast(self) -> None:
        self._fast = True
        self._fh = [getattr(self, name) for _, name in _FAST_DISPATCH]
        op_cost = self.config.costs.op_cost
        # cost rows indexed by CompiledThread.prims: row 0 = unbound
        # thread, row 1 = bound; slot 0 = "op has no primitive"
        self._cost_rows = tuple(
            (0,) + tuple(op_cost(p, bound=b) for p in Primitive)
            for b in (False, True)
        )
        # pre-bound hot collaborators (one attribute hop per step instead
        # of two or three)
        self._ev_list = self.builder._events
        self._begin_burst = self.scheduler.begin_burst_fast
        self._sched_pending = self.scheduler._switch_cost_pending
        self._sched_bursts = self.scheduler._burst_events
        self._heap = self.engine.queue._heap
        self._evseq = self.engine.queue._counter
        # shadow the listener entry points (instance attribute wins over
        # the class methods, for the scheduler and the reused handlers)
        self.need_step = self._need_step_fast  # type: ignore[method-assign]
        self.burst_complete = self._burst_complete_fast  # type: ignore[method-assign]

    def _attach_fast(self, thread: SimThread, rt: _ThreadRt) -> None:
        """Alias the compiled arrays onto the runtime at first dispatch.

        Deferred to here (not _spawn) because ``register_thread`` applies
        the run's binding policy *after* spawn, and boundness picks the
        cost row.
        """
        assert self._replay_plan is not None and self._replay_plan.compiled is not None
        ct = self._replay_plan.compiled[int(thread.tid)]
        rt.c_codes = ct.codes
        rt.c_works = ct.works
        rt.c_objs = ct.objs
        rt.c_targets = ct.targets
        rt.c_ops = ct.ops
        assert self._cost_rows is not None
        row = self._cost_rows[1 if thread.bound else 0]
        costs = [row[i] for i in ct.prims]
        for i in ct.create_idx:
            # thr_create cost follows the *child's* boundness (§3.2)
            costs[i] = self._op_cost(thread, ct.ops[i])
        rt.c_costs = costs
        # resolve parameter-less sync objects once per run (mutex/cond/
        # rwlock creation is invisible in the result, so doing it here
        # rather than at first execution cannot perturb parity) — one
        # resolution per distinct object, indexed per step via sync_slots
        sync = self.sync
        resolvers = (None, sync.mutex, sync.cond, sync.rwlock)
        rt.c_slotobjs = (None,) + tuple(
            resolvers[kind](name) for kind, name in ct.slot_specs
        )
        rt.c_syncslots = ct.sync_slots
        rt.pos = 0
        # fused burst completion — _burst_done bookkeeping plus the opcode
        # dispatch of burst_complete in a single callback frame; the
        # scheduler reuses it via thread.burst_action
        tid = int(thread.tid)
        sched = self.scheduler
        def burst_action(
            t=thread,
            t_id=tid,
            rt=rt,
            events=sched._burst_events,
            running=ThreadState.RUNNING,
            sched=sched,
            engine=self.engine,
            fh=self._fh,
            sim=self,
        ):
            events.pop(t_id, None)
            t.burst_remaining_us = 0
            if t.state is not running:
                raise SimulationError(
                    f"burst completion for non-running T{t_id}"
                )
            op = rt.current_op
            if op is None:
                raise SimulationError(
                    f"burst completed with no op for T{t_id}"
                )
            sched._atomic_depth += 1  # inlined begin_atomic()
            sim._current_cpu = t.last_cpu
            try:
                rt.op_call_time_us = engine.now_us - rt.op_cost_us
                fh[rt.cur_code](t, rt, op)
            finally:
                sim._current_cpu = None
                # inlined end_atomic(): depth is >= 1 by construction
                depth = sched._atomic_depth - 1
                sched._atomic_depth = depth
                if depth == 0 and sched._dispatch_wanted:
                    sched._dispatch_wanted = False
                    sched._kernel_dispatch()
        thread.burst_action = burst_action

    def _need_step_fast(self, thread: SimThread) -> None:
        """Fast-path ``need_step``: fetch/decode from the compiled arrays."""
        rt = self._rt[int(thread.tid)]
        op = rt.current_op
        if op is not None:
            if not rt.pending_ret:
                # same-microsecond preemption cancelled the completion
                # event before the op applied — apply it now (rare)
                self._burst_complete_fast(thread)
                return
            # deferred return of a blocking call: place its event now
            result = rt.pending_result
            code = rt.cur_code
            status = (
                Status.TIMEOUT
                if code == _CODE_COND_TIMEDWAIT and result is False
                else Status.OK
            )
            if code == _CODE_THR_JOIN and isinstance(result, int):
                target = result  # wildcard join: who we actually joined
            else:
                target = rt.cur_target
            prim = op.primitive
            if prim is not None:
                self._ev_list.append(
                    (thread.tid, prim, rt.op_call_time_us,
                     self.engine.now_us, thread.last_cpu, rt.cur_obj,
                     target, status, op.source)
                )
            rt.pending_ret = False
            rt.current_op = None
        rt.pending_result = NO_RESULT

        codes = rt.c_codes
        if codes is None:
            self._attach_fast(thread, rt)
            codes = rt.c_codes
        i = rt.pos
        rt.pos = i + 1
        rt.current_op = rt.c_ops[i]
        rt.cur_code = codes[i]
        rt.cur_obj = rt.c_objs[i]
        rt.cur_target = rt.c_targets[i]
        rt.cur_sync = rt.c_slotobjs[rt.c_syncslots[i]]
        cost = rt.c_costs[i]
        rt.op_cost_us = cost
        self._begin_burst(thread, rt.c_works[i] + cost)

    def _burst_complete_fast(self, thread: SimThread) -> None:
        """Fast-path ``burst_complete``: opcode dispatch, no record plumbing."""
        rt = self._rt[int(thread.tid)]
        op = rt.current_op
        if op is None:
            raise SimulationError(f"burst completed with no op for T{int(thread.tid)}")
        sched = self.scheduler
        sched._atomic_depth += 1  # inlined begin_atomic()
        self._current_cpu = thread.last_cpu
        try:
            rt.op_call_time_us = self.engine.now_us - rt.op_cost_us
            self._fh[rt.cur_code](thread, rt, op)
        finally:
            self._current_cpu = None
            # inlined end_atomic(): depth is >= 1 by construction
            depth = sched._atomic_depth - 1
            sched._atomic_depth = depth
            if depth == 0 and sched._dispatch_wanted:
                sched._dispatch_wanted = False
                sched._kernel_dispatch()

    def _complete_now_fast(
        self,
        thread: SimThread,
        rt: _ThreadRt,
        op: op_mod.Op,
        result: object,
        status: Status = Status.OK,
        *,
        target: Optional[int] = None,
    ) -> None:
        """Non-blocking completion on the fast path: place the event from
        the cached step constants and fetch the next instruction.

        The fetch is inlined rather than delegated to
        :meth:`_need_step_fast`: the op just completed synchronously, so
        the deferred-return prologue there cannot apply (``current_op`` is
        consumed here, ``pending_ret`` was never set).
        """
        prim = op.primitive
        if prim is not None:
            if target is None:
                target = rt.cur_target
            self._ev_list.append(
                (thread.tid, prim, rt.op_call_time_us,
                 self.engine.now_us, thread.last_cpu, rt.cur_obj,
                 target, status, op.source)
            )
        rt.pending_result = NO_RESULT
        i = rt.pos
        rt.pos = i + 1
        rt.current_op = rt.c_ops[i]
        rt.cur_code = rt.c_codes[i]
        rt.cur_obj = rt.c_objs[i]
        rt.cur_target = rt.c_targets[i]
        rt.cur_sync = rt.c_slotobjs[rt.c_syncslots[i]]
        cost = rt.c_costs[i]
        rt.op_cost_us = cost
        # inlined begin_burst_fast (kept in lockstep with the scheduler's
        # version; the state check is omitted because the thread just
        # completed a burst inside an atomic section, so it is RUNNING by
        # construction)
        duration = rt.c_works[i] + cost
        pending = self._sched_pending
        if pending:
            duration += pending.pop(thread.tid, 0)
        thread.burst_remaining_us = duration
        engine = self.engine
        end = engine.now_us + duration
        ev = thread.burst_event
        if ev is None or ev.cancelled:
            ev = engine.queue.push(end, thread.burst_action, "burst")
            thread.burst_event = ev
        else:
            ev.time_us = end
            ev.seq = seq = next(self._evseq)
            heappush(self._heap, (end, seq, ev))
        self._sched_bursts[thread.tid] = (ev, end)

    # -- fast per-op handlers (hot completion ops only; blocking/rare ops
    # -- reuse the legacy handlers via the dispatch table) -----------------

    def _f_mutex_lock(self, thread, rt, op: op_mod.MutexLock) -> None:
        if rt.cur_sync.lock(thread, self):
            self._complete_now_fast(thread, rt, op, None)
        else:
            rt.pending_ret = True

    def _f_mutex_trylock(self, thread, rt, op: op_mod.MutexTrylock) -> None:
        ok = rt.cur_sync.trylock(thread)
        self._complete_now_fast(thread, rt, op, ok, Status.OK if ok else Status.BUSY)

    def _f_mutex_unlock(self, thread, rt, op: op_mod.MutexUnlock) -> None:
        rt.cur_sync.unlock(thread, self)
        self._complete_now_fast(thread, rt, op, None)

    def _f_sema_init(self, thread, rt, op: op_mod.SemaInit) -> None:
        self.sync.sema(op.name, op.count)
        self._complete_now_fast(thread, rt, op, None)

    def _f_sema_wait(self, thread, rt, op: op_mod.SemaWait) -> None:
        if self.sync.sema(op.name).wait(thread, self):
            self._complete_now_fast(thread, rt, op, None)
        else:
            rt.pending_ret = True

    def _f_sema_trywait(self, thread, rt, op: op_mod.SemaTryWait) -> None:
        ok = self.sync.sema(op.name).trywait(thread)
        self._complete_now_fast(thread, rt, op, ok, Status.OK if ok else Status.BUSY)

    def _f_sema_post(self, thread, rt, op: op_mod.SemaPost) -> None:
        self.sync.sema(op.name).post(self)
        self._complete_now_fast(thread, rt, op, None)

    def _f_cond_signal(self, thread, rt, op: op_mod.CondSignal) -> None:
        rt.cur_sync.signal(self)
        self._complete_now_fast(thread, rt, op, None)

    def _f_cond_broadcast(self, thread, rt, op: op_mod.CondBroadcast) -> None:
        held = None
        if op.expected_waiters is not None:
            held = self._most_recent_mutex_of(thread)
        proceeded = rt.cur_sync.broadcast(
            thread, self, expected_waiters=op.expected_waiters, held_mutex=held
        )
        if proceeded:
            self._complete_now_fast(thread, rt, op, None)
        else:
            rt.pending_ret = True

    def _f_rw_rdlock(self, thread, rt, op: op_mod.RwRdLock) -> None:
        if rt.cur_sync.rdlock(thread, self):
            self._complete_now_fast(thread, rt, op, None)
        else:
            rt.pending_ret = True

    def _f_rw_wrlock(self, thread, rt, op: op_mod.RwWrLock) -> None:
        if rt.cur_sync.wrlock(thread, self):
            self._complete_now_fast(thread, rt, op, None)
        else:
            rt.pending_ret = True

    def _f_rw_tryrdlock(self, thread, rt, op: op_mod.RwTryRdLock) -> None:
        ok = rt.cur_sync.tryrdlock(thread)
        self._complete_now_fast(thread, rt, op, ok, Status.OK if ok else Status.BUSY)

    def _f_rw_trywrlock(self, thread, rt, op: op_mod.RwTryWrLock) -> None:
        ok = rt.cur_sync.trywrlock(thread)
        self._complete_now_fast(thread, rt, op, ok, Status.OK if ok else Status.BUSY)

    def _f_rw_unlock(self, thread, rt, op: op_mod.RwUnlock) -> None:
        rt.cur_sync.unlock(thread, self)
        self._complete_now_fast(thread, rt, op, None)

    def _f_noop(self, thread, rt, op: op_mod.Noop) -> None:
        if op.busy:
            self._complete_now_fast(thread, rt, op, False, Status.BUSY)
        else:
            self._complete_now_fast(thread, rt, op, True)

    def _f_shared_access(self, thread, rt, op: op_mod.Op) -> None:
        self._complete_now_fast(thread, rt, op, None)

    def _f_thr_setprio(self, thread, rt, op: op_mod.ThrSetPrio) -> None:
        thread.set_priority(op.priority)
        self._complete_now_fast(thread, rt, op, None)

    def _f_thr_setconcurrency(self, thread, rt, op: op_mod.ThrSetConcurrency) -> None:
        self.scheduler.set_concurrency(op.level)
        self._complete_now_fast(thread, rt, op, None)

    # ==================================================================
    # KernelAPI (used by the sync objects)
    # ==================================================================

    @property
    def now_us(self) -> int:
        return self.engine.now_us

    def block(self, thread: SimThread, reason: str) -> None:
        self._block_reason[int(thread.tid)] = reason
        self.scheduler.block_current(thread)

    def wake(self, thread: SimThread, result: object = NO_RESULT) -> None:
        if result is not NO_RESULT:
            self._rt[int(thread.tid)].pending_result = result
        self.scheduler.make_runnable(
            thread, waker_cpu=self._current_cpu, boost=True
        )

    def post_result(self, thread: SimThread, result: object) -> None:
        self._rt[int(thread.tid)].pending_result = result

    def arm_timer(self, delay_us: int, action: Callable[[], None], label: str):
        return self.engine.schedule_in(delay_us, action, label)

    def cancel_timer(self, handle) -> None:
        handle.cancel()

    # ==================================================================
    # operation semantics
    # ==================================================================

    def _apply(self, thread: SimThread, rt: _ThreadRt, op: op_mod.Op) -> None:
        """Dispatch on the op type.  Exactly one of these happens:

        * the op completes now → RET record + placed event + next step;
        * the thread blocked    → deferred return (``rt.pending_ret``);
        * the thread exited     → single-record ``thr_exit`` handling.
        """
        handler = self._HANDLERS.get(type(op))
        if handler is None:
            raise ProgramError(f"unhandled op {type(op).__name__}")
        handler(self, thread, rt, op)

    # -- helpers ---------------------------------------------------------

    def _complete_now(
        self,
        thread: SimThread,
        rt: _ThreadRt,
        op: op_mod.Op,
        result: object,
        status: Status = Status.OK,
        *,
        target: Optional[int] = None,
    ) -> None:
        """Non-blocking completion: finish the op and start the next step."""
        self._finish_op(thread, op, status, end_us=self.engine.now_us, target=target)
        rt.current_op = None
        rt.pending_result = result
        self.need_step(thread)

    def _blocked(self, rt: _ThreadRt) -> None:
        rt.pending_ret = True

    def _finish_op(
        self,
        thread: SimThread,
        op: op_mod.Op,
        status: Status,
        *,
        end_us: int,
        target: Optional[int] = None,
    ) -> None:
        """Emit the return-side record, placed event and probe charge."""
        rt = self._rt[int(thread.tid)]
        if target is None:
            target = self._op_target(op)
        if op.primitive is not None:
            self._emit_record(thread, op, Phase.RET, end_us, status=status, target=target)
            if self.probe is not None:
                rt.extra_us += self.probe.overhead_us  # the return-side probe
            self.builder.event_placed(
                tid=thread.tid,
                primitive=op.primitive,
                start_us=rt.op_call_time_us,
                end_us=end_us,
                cpu=thread.last_cpu,
                obj=op.obj,
                target=ThreadId(target) if target is not None else None,
                status=status,
                source=op.source,
            )

    def _ret_status(self, op: op_mod.Op, result: object) -> Status:
        if isinstance(op, op_mod.CondTimedWait) and result is False:
            return Status.TIMEOUT
        return Status.OK

    @staticmethod
    def _op_target(op: op_mod.Op) -> Optional[int]:
        if isinstance(op, op_mod.ThrJoin) and op.tid is not None:
            return op.tid
        if isinstance(op, op_mod.ThrCreate) and op.replay_tid is not None:
            return op.replay_tid
        return None

    def _op_cost(self, thread: SimThread, op: op_mod.Op) -> int:
        costs = self.config.costs
        if isinstance(op, op_mod.Noop):
            prim = op.noop_primitive
            return costs.op_cost(prim, bound=thread.bound) if prim else 0
        if op.primitive is None:
            return 0
        if op.primitive is Primitive.THR_CREATE:
            # the creation multiplier follows the *child's* boundness (§3.2)
            assert isinstance(op, op_mod.ThrCreate)
            child_bound = op.bound
            tid = op.replay_tid
            if tid is not None:
                policy = self.config.policy_for(tid)
                if policy.effective_bound() is not None:
                    child_bound = bool(policy.effective_bound())
            return costs.op_cost(Primitive.THR_CREATE, bound=child_bound)
        return costs.op_cost(op.primitive, bound=thread.bound)

    # -- per-op handlers ---------------------------------------------------

    def _h_mutex_lock(self, thread, rt, op: op_mod.MutexLock) -> None:
        if self.sync.mutex(op.name).lock(thread, self):
            self._complete_now(thread, rt, op, None)
        else:
            self._blocked(rt)

    def _h_mutex_trylock(self, thread, rt, op: op_mod.MutexTrylock) -> None:
        ok = self.sync.mutex(op.name).trylock(thread)
        self._complete_now(thread, rt, op, ok, Status.OK if ok else Status.BUSY)

    def _h_mutex_unlock(self, thread, rt, op: op_mod.MutexUnlock) -> None:
        self.sync.mutex(op.name).unlock(thread, self)
        self._complete_now(thread, rt, op, None)

    def _h_sema_init(self, thread, rt, op: op_mod.SemaInit) -> None:
        self.sync.sema(op.name, op.count)
        self._complete_now(thread, rt, op, None)

    def _h_sema_wait(self, thread, rt, op: op_mod.SemaWait) -> None:
        if self.sync.sema(op.name).wait(thread, self):
            self._complete_now(thread, rt, op, None)
        else:
            self._blocked(rt)

    def _h_sema_trywait(self, thread, rt, op: op_mod.SemaTryWait) -> None:
        ok = self.sync.sema(op.name).trywait(thread)
        self._complete_now(thread, rt, op, ok, Status.OK if ok else Status.BUSY)

    def _h_sema_post(self, thread, rt, op: op_mod.SemaPost) -> None:
        self.sync.sema(op.name).post(self)
        self._complete_now(thread, rt, op, None)

    def _h_cond_wait(self, thread, rt, op: op_mod.CondWait) -> None:
        mutex = self.sync.mutex(op.mutex) if op.mutex else None
        self.sync.cond(op.name).wait(thread, mutex, self)
        self._blocked(rt)

    def _h_cond_timedwait(self, thread, rt, op: op_mod.CondTimedWait) -> None:
        if op.forced_timeout:
            # §3.2: a wait that timed out in the log replays as a delay
            rt.pending_result = False
            self._blocked(rt)
            self.scheduler.sleep_current(thread, op.timeout_us)
            return
        mutex = self.sync.mutex(op.mutex) if op.mutex else None
        cond = self.sync.cond(op.name)
        cond.wait(
            thread,
            mutex,
            self,
            timeout_us=op.timeout_us,
            on_timeout=lambda t, c=cond: self._cond_timeout(c, t),
        )
        self._blocked(rt)

    def _cond_timeout(self, cond, thread: SimThread) -> None:
        """The timed wait expired before a signal arrived."""
        mutex = cond.cancel_wait(thread, self)
        self.post_result(thread, False)
        if mutex is None or mutex.enqueue_blocked(thread):
            self.scheduler.make_runnable(thread, boost=True)
        # else: queued on the mutex; the hand-off will wake it

    def _h_cond_signal(self, thread, rt, op: op_mod.CondSignal) -> None:
        self.sync.cond(op.name).signal(self)
        self._complete_now(thread, rt, op, None)

    def _h_cond_broadcast(self, thread, rt, op: op_mod.CondBroadcast) -> None:
        held = None
        if op.expected_waiters is not None:
            # A blocking §6 barrier broadcast happens inside the barrier's
            # critical section: hand the most recently acquired mutex to
            # the condition variable so the waiters it is waiting for can
            # get in (it is re-acquired before the broadcaster resumes).
            held = self._most_recent_mutex_of(thread)
        proceeded = self.sync.cond(op.name).broadcast(
            thread, self, expected_waiters=op.expected_waiters, held_mutex=held
        )
        if proceeded:
            self._complete_now(thread, rt, op, None)
        else:
            self._blocked(rt)

    def _most_recent_mutex_of(self, thread: SimThread):
        held = [m for m in self.sync.all_mutexes().values() if m.owner is thread]
        if not held:
            return None
        return max(held, key=lambda m: m.acquired_seq)

    def _h_rw_rdlock(self, thread, rt, op: op_mod.RwRdLock) -> None:
        if self.sync.rwlock(op.name).rdlock(thread, self):
            self._complete_now(thread, rt, op, None)
        else:
            self._blocked(rt)

    def _h_rw_wrlock(self, thread, rt, op: op_mod.RwWrLock) -> None:
        if self.sync.rwlock(op.name).wrlock(thread, self):
            self._complete_now(thread, rt, op, None)
        else:
            self._blocked(rt)

    def _h_rw_tryrdlock(self, thread, rt, op: op_mod.RwTryRdLock) -> None:
        ok = self.sync.rwlock(op.name).tryrdlock(thread)
        self._complete_now(thread, rt, op, ok, Status.OK if ok else Status.BUSY)

    def _h_rw_trywrlock(self, thread, rt, op: op_mod.RwTryWrLock) -> None:
        ok = self.sync.rwlock(op.name).trywrlock(thread)
        self._complete_now(thread, rt, op, ok, Status.OK if ok else Status.BUSY)

    def _h_rw_unlock(self, thread, rt, op: op_mod.RwUnlock) -> None:
        self.sync.rwlock(op.name).unlock(thread, self)
        self._complete_now(thread, rt, op, None)

    def _h_resched(self, thread, rt, op: op_mod.Resched) -> None:
        # internal scheduling point: no record, no cost, stay on the CPU
        rt.current_op = None
        rt.pending_result = None
        self.need_step(thread)

    def _h_delay(self, thread, rt, op: op_mod.Delay) -> None:
        rt.current_op = None  # not a library call: nothing to record
        self.scheduler.sleep_current(thread, op.duration_us)

    def _h_io_wait(self, thread, rt, op: op_mod.IoWait) -> None:
        # the §6 extension: a recorded blocking I/O — the thread sleeps
        # without a processor and the return is stamped when it resumes
        self._blocked(rt)
        self.scheduler.sleep_current(thread, op.duration_us)

    def _h_noop(self, thread, rt, op: op_mod.Noop) -> None:
        status = Status.BUSY if op.busy else Status.OK
        self._complete_now(thread, rt, op, not op.busy, status)

    def _h_shared_access(self, thread, rt, op: op_mod.Op) -> None:
        # record-only instrumentation point: no blocking, no side effect
        self._complete_now(thread, rt, op, None)

    def _h_thr_create(self, thread, rt, op: op_mod.ThrCreate) -> None:
        child = self._spawn(thread, op)
        self._complete_now(thread, rt, op, int(child.tid), target=int(child.tid))

    def _h_thr_join(self, thread, rt, op: op_mod.ThrJoin) -> None:
        if op.tid is None:
            if self._zombie_order:
                tid = self._zombie_order.pop(0)
                self._reap(tid)
                self._complete_now(thread, rt, op, tid, target=tid)
            else:
                if not self._any_joinable():
                    raise DeadlockError(
                        f"T{int(thread.tid)} joins but no joinable thread exists"
                    )
                self._wildcard_joiners.append(thread)
                self.block(thread, "thr_join <any>")
                self._blocked(rt)
            return
        target = self.threads.get(op.tid)
        if target is None:
            raise SimulationError(f"thr_join of unknown thread T{op.tid}")
        if target.state is ThreadState.DEAD:
            raise SimulationError(f"thr_join of already-joined T{op.tid}")
        if target.state is ThreadState.ZOMBIE:
            self._reap(op.tid)
            self._complete_now(thread, rt, op, op.tid)
        else:
            self._joiners.setdefault(op.tid, []).append(thread)
            self.block(thread, f"thr_join T{op.tid}")
            self._blocked(rt)

    def _any_joinable(self) -> bool:
        return any(
            t.alive and int(t.tid) != int(MAIN_THREAD_ID) for t in self.threads.values()
        )

    def _h_thr_exit(self, thread, rt, op: op_mod.ThrExit) -> None:
        # single-record primitive: the probe's final act is to call the
        # real thr_exit, which never returns (paper fig. 3)
        if op.primitive is not None:
            self.builder.event_placed(
                tid=thread.tid,
                primitive=op.primitive,
                start_us=rt.op_call_time_us,
                end_us=self.engine.now_us,
                cpu=thread.last_cpu,
                source=op.source,
            )
        rt.current_op = None
        self.scheduler.thread_exited(thread)
        self._notify_joiners(thread)

    def _h_thr_yield(self, thread, rt, op: op_mod.ThrYield) -> None:
        self._blocked(rt)  # the call returns when the thread runs again
        self.scheduler.yield_current(thread)

    def _h_thr_setprio(self, thread, rt, op: op_mod.ThrSetPrio) -> None:
        thread.set_priority(op.priority)
        self._complete_now(thread, rt, op, None)

    def _h_thr_setconcurrency(self, thread, rt, op: op_mod.ThrSetConcurrency) -> None:
        self.scheduler.set_concurrency(op.level)
        self._complete_now(thread, rt, op, None)

    _HANDLERS = {
        op_mod.MutexLock: _h_mutex_lock,
        op_mod.MutexTrylock: _h_mutex_trylock,
        op_mod.MutexUnlock: _h_mutex_unlock,
        op_mod.SemaInit: _h_sema_init,
        op_mod.SemaWait: _h_sema_wait,
        op_mod.SemaTryWait: _h_sema_trywait,
        op_mod.SemaPost: _h_sema_post,
        op_mod.CondWait: _h_cond_wait,
        op_mod.CondTimedWait: _h_cond_timedwait,
        op_mod.CondSignal: _h_cond_signal,
        op_mod.CondBroadcast: _h_cond_broadcast,
        op_mod.RwRdLock: _h_rw_rdlock,
        op_mod.RwWrLock: _h_rw_wrlock,
        op_mod.RwTryRdLock: _h_rw_tryrdlock,
        op_mod.RwTryWrLock: _h_rw_trywrlock,
        op_mod.RwUnlock: _h_rw_unlock,
        op_mod.Resched: _h_resched,
        op_mod.Delay: _h_delay,
        op_mod.IoWait: _h_io_wait,
        op_mod.Noop: _h_noop,
        op_mod.SharedRead: _h_shared_access,
        op_mod.SharedWrite: _h_shared_access,
        op_mod.ThrCreate: _h_thr_create,
        op_mod.ThrJoin: _h_thr_join,
        op_mod.ThrExit: _h_thr_exit,
        op_mod.ThrYield: _h_thr_yield,
        op_mod.ThrSetPrio: _h_thr_setprio,
        op_mod.ThrSetConcurrency: _h_thr_setconcurrency,
    }

    # ==================================================================
    # thread creation / exit plumbing
    # ==================================================================

    def _spawn(self, creator: SimThread, op: op_mod.ThrCreate) -> SimThread:
        if self._replay_plan is not None:
            if op.replay_tid is None:
                raise SimulationError("replay thr_create without a thread id")
            tid = op.replay_tid
            if tid not in self._replay_plan.steps:
                raise SimulationError(f"replay plan has no steps for T{tid}")
            meta = self._replay_plan.meta.get(tid, ReplayThreadMeta(tid))
            behavior: Optional[ThreadBehavior] = (
                None if self._fast else ReplayBehavior(self._replay_plan.steps[tid])
            )
            func_name = meta.func_name
            bound = op.bound or meta.bound
            ctx = None
        else:
            if op.func is None:
                raise ProgramError("thr_create without a start routine")
            tid = next(self._next_tid)
            func_name = op.name or getattr(op.func, "__name__", "thread")
            bound = op.bound
            assert self._program is not None and self._shared is not None
            ctx = ThreadCtx(
                tid=tid,
                shared=self._shared,
                rng=self._program.make_rng(tid),
                args=tuple(op.args),
            )
            behavior = LiveBehavior(op.func(ctx), perturb=self.perturb)
        if tid in self.threads:
            raise SimulationError(f"duplicate thread id {tid}")
        child = SimThread(
            tid=ThreadId(tid),
            func_name=func_name,
            priority=op.priority if op.priority is not None else DEFAULT_USER_PRIORITY,
            bound=bound,
            bound_cpu=op.cpu,
        )
        self.threads[tid] = child
        self._rt[tid] = _ThreadRt(behavior=behavior, ctx=ctx)
        if self.probe is not None:
            self.probe.note_thread_function(tid, func_name)
        self.scheduler.register_thread(child, waker_cpu=self._current_cpu)
        return child

    def _notify_joiners(self, exited: SimThread) -> None:
        tid = int(exited.tid)
        joiners = self._joiners.pop(tid, [])
        if joiners:
            joiner = joiners.pop(0)
            if joiners:
                self._joiners[tid] = joiners
            self._reap(tid)
            self.wake(joiner, result=tid)
            return
        if self._wildcard_joiners:
            joiner = self._wildcard_joiners.pop(0)
            self._reap(tid)
            self.wake(joiner, result=tid)
            return
        self._zombie_order.append(tid)

    def _reap(self, tid: int) -> None:
        thread = self.threads[tid]
        if thread.state is not ThreadState.ZOMBIE:
            raise SimulationError(f"reaping non-zombie T{tid}")
        thread.state = ThreadState.DEAD
        if tid in self._zombie_order:
            self._zombie_order.remove(tid)

    # ==================================================================
    # recording (the probe)
    # ==================================================================

    def _emit_marker(self, primitive: Primitive, thread: SimThread) -> None:
        if self.probe is None:
            return
        self.probe.record(
            EventRecord(
                time_us=self.engine.now_us,
                tid=thread.tid,
                phase=Phase.CALL,
                primitive=primitive,
            )
        )
        self._rt[int(thread.tid)].extra_us += self.probe.overhead_us

    def _emit_record(
        self,
        thread: SimThread,
        op: op_mod.Op,
        phase: Phase,
        time_us: int,
        *,
        status: Optional[Status] = None,
        target: Optional[int] = None,
    ) -> None:
        if self.probe is None or op.primitive is None:
            return
        obj2 = None
        arg = None
        if isinstance(op, (op_mod.CondWait, op_mod.CondTimedWait)) and op.mutex:
            obj2 = op_mod.mutex_id(op.mutex)
        if isinstance(op, op_mod.CondTimedWait):
            arg = op.timeout_us
        elif isinstance(op, op_mod.IoWait):
            arg = op.duration_us
        elif isinstance(op, op_mod.SemaInit):
            arg = op.count
        elif isinstance(op, op_mod.ThrSetPrio):
            arg = op.priority
        elif isinstance(op, op_mod.ThrSetConcurrency):
            arg = op.level
        elif isinstance(op, op_mod.ThrCreate):
            arg = 1 if op.bound else 0
        self.probe.record(
            EventRecord(
                time_us=time_us,
                tid=thread.tid,
                phase=phase,
                primitive=op.primitive,
                obj=op.obj,
                obj2=obj2,
                target=ThreadId(target) if target is not None else None,
                arg=arg,
                status=status,
                source=op.source,
            )
        )


def simulate_program(
    program: Program,
    config: SimConfig,
    *,
    probe: Optional[ProbeAPI] = None,
    perturb: Optional[Callable[[int], int]] = None,
) -> SimulationResult:
    """Convenience wrapper: one live execution of *program* under *config*."""
    return Simulator(config, probe=probe, perturb=perturb).run_program(program)
