"""The VPPB Simulator (§3.2).

Drives thread behaviours over the Solaris scheduling model:

* each running thread is executed as a sequence of *steps* — a CPU burst
  followed by one thread-library operation;
* the operation's cost (from the :class:`~repro.solaris.costs.CostModel`,
  with the paper's bound-thread multipliers) is charged as CPU time at the
  end of the burst, then its semantics are applied against the simulated
  synchronisation objects;
* blocking operations take the thread off its processor; the return from
  the call (and its return-probe overhead, when recording) happens when the
  thread is scheduled again — exactly the timing a real interposed library
  exhibits.

The same class performs three roles from the paper's figure 1:

* **monitored uni-processor execution** — ``Simulator(uniprocessor config,
  probe=Recorder)`` running a live program *is* the Recorder run: the probe
  writes the log and its overhead is charged into the simulated timeline
  (that is the §4 "intrusion");
* **ground-truth multiprocessor execution** — a live program on an N-CPU
  configuration (optionally with OS-noise perturbation) stands in for the
  paper's real Sun E4000 runs;
* **prediction** — a :class:`ReplayPlan` compiled from a recorded trace by
  :mod:`repro.core.predictor` replayed under any configuration.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Protocol

from repro.core.config import SimConfig
from repro.core.engine import Engine, Watchdog
from repro.core.errors import (
    BudgetExceededError,
    DeadlockError,
    LivelockError,
    ProgramError,
    ReplayDivergenceError,
    SimulationError,
)
from repro.core.events import EventRecord, Phase, Primitive, Status
from repro.core.ids import MAIN_THREAD_ID, ThreadId
from repro.core.result import (
    Incompleteness,
    ResultBuilder,
    RunStatus,
    SimulationResult,
    ThreadSummary,
)
from repro.program import ops as op_mod
from repro.program.behavior import LiveBehavior, ReplayBehavior, Step, ThreadBehavior
from repro.program.program import Program, ThreadCtx
from repro.solaris.scheduler import Scheduler
from repro.solaris.sync import NO_RESULT, SyncObjectTable
from repro.solaris.thread_model import (
    DEFAULT_USER_PRIORITY,
    SimThread,
    ThreadState,
)

__all__ = ["ProbeAPI", "ReplayThreadMeta", "ReplayPlan", "Simulator", "simulate_program"]


class ProbeAPI(Protocol):
    """What the Simulator needs from a Recorder probe (§3.1)."""

    @property
    def overhead_us(self) -> int:
        """CPU time one probe record costs the monitored program."""
        ...

    def record(self, rec: EventRecord) -> None:
        """Store one log record."""

    def note_thread_function(self, tid: int, func_name: str) -> None:
        """Remember the start routine passed to ``thr_create``."""


@dataclass(frozen=True)
class ReplayThreadMeta:
    """Per-thread attributes reconstructed from a trace."""

    tid: int
    func_name: str = ""
    bound: bool = False


@dataclass
class ReplayPlan:
    """A compiled trace: per-thread step lists plus thread attributes.

    Produced by :func:`repro.core.predictor.compile_trace`; consumed by
    :meth:`Simulator.run_replay`.
    """

    steps: Dict[int, List[Step]]
    meta: Dict[int, ReplayThreadMeta]
    program_name: str = "a.out"

    def total_steps(self) -> int:
        return sum(len(s) for s in self.steps.values())


# ---------------------------------------------------------------------------


@dataclass
class _ThreadRt:
    """Transient per-thread simulation state."""

    behavior: ThreadBehavior
    ctx: Optional[ThreadCtx] = None
    current_op: Optional[op_mod.Op] = None
    op_cost_us: int = 0
    op_call_time_us: int = 0
    #: a blocking op returned control; its RET record / placed event are due
    #: when the thread next reaches a processor
    pending_ret: bool = False
    pending_result: object = NO_RESULT
    #: extra CPU to fold into the next burst (return-probe overhead etc.)
    extra_us: int = 0
    started: bool = False


class Simulator:
    """One simulated execution (live program or trace replay)."""

    def __init__(
        self,
        config: SimConfig,
        *,
        probe: Optional[ProbeAPI] = None,
        perturb: Optional[Callable[[int], int]] = None,
        max_events: int = 50_000_000,
        watchdog: Optional[Watchdog] = None,
        strict: bool = True,
    ):
        self.config = config
        self.probe = probe
        self.perturb = perturb
        self.strict = strict
        self.engine = Engine(max_events=max_events, watchdog=watchdog)
        self.builder = ResultBuilder(config)
        self.scheduler = Scheduler(self.engine, config, self.builder, self)
        self.sync = SyncObjectTable()

        self.threads: Dict[int, SimThread] = {}
        self._rt: Dict[int, _ThreadRt] = {}
        self._next_tid = itertools.count(4)  # Solaris hands user threads 4, 5, ...
        self._block_reason: Dict[int, str] = {}
        self._current_cpu: Optional[int] = None

        # join bookkeeping
        self._zombie_order: List[int] = []
        self._joiners: Dict[int, List[SimThread]] = {}
        self._wildcard_joiners: List[SimThread] = []

        # live-program context
        self._program: Optional[Program] = None
        self._shared: Optional[dict] = None
        # replay context
        self._replay_plan: Optional[ReplayPlan] = None

        self._finished = False

    # ==================================================================
    # public entry points
    # ==================================================================

    def run_program(self, program: Program) -> SimulationResult:
        """Execute a live virtual program to completion."""
        self._program = program
        self._shared = program.make_shared()
        for name, count in program.semaphores.items():
            self.sync.sema(name, count)
        ctx = ThreadCtx(
            tid=int(MAIN_THREAD_ID),
            shared=self._shared,
            rng=program.make_rng(int(MAIN_THREAD_ID)),
        )
        behavior = LiveBehavior(program.main(ctx), perturb=self.perturb)
        return self._run(behavior, ctx=ctx, program_name=program.name)

    def run_replay(self, plan: ReplayPlan) -> SimulationResult:
        """Replay a compiled trace (the paper's prediction run)."""
        self._replay_plan = plan
        if int(MAIN_THREAD_ID) not in plan.steps:
            raise SimulationError("replay plan lacks the main thread (tid 1)")
        behavior = ReplayBehavior(plan.steps[int(MAIN_THREAD_ID)])
        return self._run(behavior, ctx=None, program_name=plan.program_name)

    # ==================================================================
    # run loop
    # ==================================================================

    def _run(
        self,
        main_behavior: ThreadBehavior,
        *,
        ctx: Optional[ThreadCtx],
        program_name: str,
    ) -> SimulationResult:
        if self._finished:
            raise SimulationError("a Simulator instance runs exactly once")
        main = SimThread(tid=MAIN_THREAD_ID, func_name="main")
        self.threads[int(MAIN_THREAD_ID)] = main
        self._rt[int(MAIN_THREAD_ID)] = _ThreadRt(behavior=main_behavior, ctx=ctx)
        if self.probe is not None:
            self._emit_marker(Primitive.START_COLLECT, main)
        self.scheduler.register_thread(main, waker_cpu=None)

        incompleteness: Optional[Incompleteness] = None
        try:
            self.engine.run()
        except (
            BudgetExceededError,
            LivelockError,
            ReplayDivergenceError,
            DeadlockError,
        ) as exc:
            if self.strict:
                self._finished = True
                raise
            incompleteness = self._downgrade(exc)
        self._finished = True

        makespan = 0
        blocked = []
        for thread in self.threads.values():
            if thread.alive:
                blocked.append(
                    f"T{int(thread.tid)} ({thread.state.value}: "
                    f"{self._block_reason.get(int(thread.tid), '?')})"
                )
            if thread.end_time_us is not None:
                makespan = max(makespan, thread.end_time_us)
        if blocked and incompleteness is None:
            blocked_tids = tuple(
                int(t.tid) for t in self.threads.values() if t.alive
            )
            message = "simulation ended with live threads: " + ", ".join(blocked)
            if self.strict:
                raise DeadlockError(message, blocked=blocked_tids)
            incompleteness = Incompleteness(
                status=RunStatus.DEADLOCK,
                reason=message,
                blocked=blocked_tids,
                cycle=self._find_blocking_cycle(),
            )
        if incompleteness is not None:
            # partial result: the timeline covers everything simulated so far
            makespan = max(makespan, self.engine.now_us)
        elif self.probe is not None:
            self.probe.record(
                EventRecord(
                    time_us=makespan,
                    tid=MAIN_THREAD_ID,
                    phase=Phase.CALL,
                    primitive=Primitive.END_COLLECT,
                )
            )
        summaries = {
            t.tid: ThreadSummary(
                tid=t.tid,
                func_name=t.func_name,
                created_at_us=t.created_at_us,
                start_us=t.start_time_us,
                end_us=t.end_time_us,
                work_us=t.cpu_time_us,
            )
            for t in self.threads.values()
        }
        return self.builder.build(
            makespan_us=makespan,
            summaries=summaries,
            engine_events=self.engine.events_executed,
            incompleteness=incompleteness,
        )

    # ==================================================================
    # graceful degradation (strict=False)
    # ==================================================================

    def _downgrade(self, exc: SimulationError) -> Incompleteness:
        """Turn a mid-run failure into a partial-result diagnosis."""
        blocked = tuple(int(t.tid) for t in self.threads.values() if t.alive)
        if isinstance(exc, BudgetExceededError):
            return Incompleteness(
                status=RunStatus.BUDGET, reason=str(exc), blocked=blocked
            )
        if isinstance(exc, ReplayDivergenceError):
            return Incompleteness(
                status=RunStatus.DIVERGED,
                reason=str(exc),
                blocked=blocked,
                divergence_tid=exc.tid,
                divergence_us=self.engine.now_us,
            )
        if isinstance(exc, DeadlockError):
            return Incompleteness(
                status=RunStatus.DEADLOCK,
                reason=str(exc),
                blocked=exc.blocked or blocked,
                cycle=self._find_blocking_cycle(),
            )
        return Incompleteness(
            status=RunStatus.LIVELOCK, reason=str(exc), blocked=blocked
        )

    def _find_blocking_cycle(self) -> tuple:
        """A cycle in the wait-for graph of blocked threads, if one exists.

        Edges: a mutex waiter waits for the owner; an rwlock waiter waits
        for the writer (or the first reader); a joiner waits for the
        joined thread.  Condition/semaphore waits have no owner, so they
        never contribute edges (those deadlocks have no cycle witness —
        the blocked set is the diagnosis).
        """
        waits_for: Dict[int, int] = {}
        for mutex in self.sync.all_mutexes().values():
            if mutex.owner is None:
                continue
            for waiter in mutex.waiters.threads():
                waits_for[int(waiter.tid)] = int(mutex.owner.tid)
        for rwlock in self.sync._rwlocks.values():
            holder = rwlock.writer or (rwlock.readers[0] if rwlock.readers else None)
            if holder is None:
                continue
            for _, waiter in rwlock._queue:
                waits_for[int(waiter.tid)] = int(holder.tid)
        for target_tid, joiners in self._joiners.items():
            for joiner in joiners:
                waits_for[int(joiner.tid)] = target_tid

        for start in waits_for:
            seen: Dict[int, int] = {}
            node = start
            pos = 0
            while node in waits_for and node not in seen:
                seen[node] = pos
                pos += 1
                node = waits_for[node]
            if node in seen:
                cycle = [t for t, p in sorted(seen.items(), key=lambda kv: kv[1])]
                return tuple(cycle[seen[node]:])
        return ()

    # ==================================================================
    # SchedulerListener
    # ==================================================================

    def need_step(self, thread: SimThread) -> None:
        """The thread reached a processor with nothing in flight."""
        rt = self._rt[int(thread.tid)]
        now = self.engine.now_us

        if not rt.started:
            rt.started = True
            if int(thread.tid) != int(MAIN_THREAD_ID):
                # the interposed start routine announces the thread (§3.1)
                self._emit_marker(Primitive.THREAD_START, thread)

        if rt.current_op is not None and not rt.pending_ret:
            # The previous burst was fully consumed, but a preemption at
            # the very same microsecond cancelled its completion event
            # before the operation could be applied.  The thread is back
            # on a processor now — apply the operation here.
            self.burst_complete(thread)
            return

        if rt.pending_ret:
            # deferred return of a blocking call: record it now
            op = rt.current_op
            assert op is not None
            status = self._ret_status(op, rt.pending_result)
            target = None
            if isinstance(op, op_mod.ThrJoin) and isinstance(rt.pending_result, int):
                target = rt.pending_result  # wildcard join: who we joined
            self._finish_op(thread, op, status, end_us=now, target=target)
            rt.pending_ret = False
            rt.current_op = None

        result = None
        if rt.pending_result is not NO_RESULT:
            result = rt.pending_result
            rt.pending_result = NO_RESULT

        step = rt.behavior.next_step(result)
        if step is None:
            step = Step(0, op_mod.ThrExit())
        self._begin_step(thread, rt, step)

    def _begin_step(self, thread: SimThread, rt: _ThreadRt, step: Step) -> None:
        op = step.op
        rt.current_op = op
        rt.op_cost_us = self._op_cost(thread, op)
        burst = step.work_us + rt.op_cost_us + rt.extra_us
        rt.extra_us = 0
        if self.probe is not None and op.primitive is not None:
            burst += self.probe.overhead_us  # the call-side probe
        self.scheduler.begin_burst(thread, burst)

    def burst_complete(self, thread: SimThread) -> None:
        """The burst (work + call cost) elapsed: apply the operation."""
        rt = self._rt[int(thread.tid)]
        op = rt.current_op
        if op is None:
            raise SimulationError(f"burst completed with no op for T{int(thread.tid)}")
        self.scheduler.begin_atomic()
        self._current_cpu = thread.last_cpu
        try:
            rt.op_call_time_us = self.engine.now_us - rt.op_cost_us
            self._emit_record(
                thread,
                op,
                Phase.CALL,
                rt.op_call_time_us,
                target=self._op_target(op),
            )
            self._apply(thread, rt, op)
        finally:
            self._current_cpu = None
            self.scheduler.end_atomic()

    # ==================================================================
    # KernelAPI (used by the sync objects)
    # ==================================================================

    @property
    def now_us(self) -> int:
        return self.engine.now_us

    def block(self, thread: SimThread, reason: str) -> None:
        self._block_reason[int(thread.tid)] = reason
        self.scheduler.block_current(thread)

    def wake(self, thread: SimThread, result: object = NO_RESULT) -> None:
        if result is not NO_RESULT:
            self._rt[int(thread.tid)].pending_result = result
        self.scheduler.make_runnable(
            thread, waker_cpu=self._current_cpu, boost=True
        )

    def post_result(self, thread: SimThread, result: object) -> None:
        self._rt[int(thread.tid)].pending_result = result

    def arm_timer(self, delay_us: int, action: Callable[[], None], label: str):
        return self.engine.schedule_in(delay_us, action, label)

    def cancel_timer(self, handle) -> None:
        handle.cancel()

    # ==================================================================
    # operation semantics
    # ==================================================================

    def _apply(self, thread: SimThread, rt: _ThreadRt, op: op_mod.Op) -> None:
        """Dispatch on the op type.  Exactly one of these happens:

        * the op completes now → RET record + placed event + next step;
        * the thread blocked    → deferred return (``rt.pending_ret``);
        * the thread exited     → single-record ``thr_exit`` handling.
        """
        handler = self._HANDLERS.get(type(op))
        if handler is None:
            raise ProgramError(f"unhandled op {type(op).__name__}")
        handler(self, thread, rt, op)

    # -- helpers ---------------------------------------------------------

    def _complete_now(
        self,
        thread: SimThread,
        rt: _ThreadRt,
        op: op_mod.Op,
        result: object,
        status: Status = Status.OK,
        *,
        target: Optional[int] = None,
    ) -> None:
        """Non-blocking completion: finish the op and start the next step."""
        self._finish_op(thread, op, status, end_us=self.engine.now_us, target=target)
        rt.current_op = None
        rt.pending_result = result
        self.need_step(thread)

    def _blocked(self, rt: _ThreadRt) -> None:
        rt.pending_ret = True

    def _finish_op(
        self,
        thread: SimThread,
        op: op_mod.Op,
        status: Status,
        *,
        end_us: int,
        target: Optional[int] = None,
    ) -> None:
        """Emit the return-side record, placed event and probe charge."""
        rt = self._rt[int(thread.tid)]
        if target is None:
            target = self._op_target(op)
        if op.primitive is not None:
            self._emit_record(thread, op, Phase.RET, end_us, status=status, target=target)
            if self.probe is not None:
                rt.extra_us += self.probe.overhead_us  # the return-side probe
            self.builder.event_placed(
                tid=thread.tid,
                primitive=op.primitive,
                start_us=rt.op_call_time_us,
                end_us=end_us,
                cpu=thread.last_cpu,
                obj=op.obj,
                target=ThreadId(target) if target is not None else None,
                status=status,
                source=op.source,
            )

    def _ret_status(self, op: op_mod.Op, result: object) -> Status:
        if isinstance(op, op_mod.CondTimedWait) and result is False:
            return Status.TIMEOUT
        return Status.OK

    @staticmethod
    def _op_target(op: op_mod.Op) -> Optional[int]:
        if isinstance(op, op_mod.ThrJoin) and op.tid is not None:
            return op.tid
        if isinstance(op, op_mod.ThrCreate) and op.replay_tid is not None:
            return op.replay_tid
        return None

    def _op_cost(self, thread: SimThread, op: op_mod.Op) -> int:
        costs = self.config.costs
        if isinstance(op, op_mod.Noop):
            prim = op.noop_primitive
            return costs.op_cost(prim, bound=thread.bound) if prim else 0
        if op.primitive is None:
            return 0
        if op.primitive is Primitive.THR_CREATE:
            # the creation multiplier follows the *child's* boundness (§3.2)
            assert isinstance(op, op_mod.ThrCreate)
            child_bound = op.bound
            tid = op.replay_tid
            if tid is not None:
                policy = self.config.policy_for(tid)
                if policy.effective_bound() is not None:
                    child_bound = bool(policy.effective_bound())
            return costs.op_cost(Primitive.THR_CREATE, bound=child_bound)
        return costs.op_cost(op.primitive, bound=thread.bound)

    # -- per-op handlers ---------------------------------------------------

    def _h_mutex_lock(self, thread, rt, op: op_mod.MutexLock) -> None:
        if self.sync.mutex(op.name).lock(thread, self):
            self._complete_now(thread, rt, op, None)
        else:
            self._blocked(rt)

    def _h_mutex_trylock(self, thread, rt, op: op_mod.MutexTrylock) -> None:
        ok = self.sync.mutex(op.name).trylock(thread)
        self._complete_now(thread, rt, op, ok, Status.OK if ok else Status.BUSY)

    def _h_mutex_unlock(self, thread, rt, op: op_mod.MutexUnlock) -> None:
        self.sync.mutex(op.name).unlock(thread, self)
        self._complete_now(thread, rt, op, None)

    def _h_sema_init(self, thread, rt, op: op_mod.SemaInit) -> None:
        self.sync.sema(op.name, op.count)
        self._complete_now(thread, rt, op, None)

    def _h_sema_wait(self, thread, rt, op: op_mod.SemaWait) -> None:
        if self.sync.sema(op.name).wait(thread, self):
            self._complete_now(thread, rt, op, None)
        else:
            self._blocked(rt)

    def _h_sema_trywait(self, thread, rt, op: op_mod.SemaTryWait) -> None:
        ok = self.sync.sema(op.name).trywait(thread)
        self._complete_now(thread, rt, op, ok, Status.OK if ok else Status.BUSY)

    def _h_sema_post(self, thread, rt, op: op_mod.SemaPost) -> None:
        self.sync.sema(op.name).post(self)
        self._complete_now(thread, rt, op, None)

    def _h_cond_wait(self, thread, rt, op: op_mod.CondWait) -> None:
        mutex = self.sync.mutex(op.mutex) if op.mutex else None
        self.sync.cond(op.name).wait(thread, mutex, self)
        self._blocked(rt)

    def _h_cond_timedwait(self, thread, rt, op: op_mod.CondTimedWait) -> None:
        if op.forced_timeout:
            # §3.2: a wait that timed out in the log replays as a delay
            rt.pending_result = False
            self._blocked(rt)
            self.scheduler.sleep_current(thread, op.timeout_us)
            return
        mutex = self.sync.mutex(op.mutex) if op.mutex else None
        cond = self.sync.cond(op.name)
        cond.wait(
            thread,
            mutex,
            self,
            timeout_us=op.timeout_us,
            on_timeout=lambda t, c=cond: self._cond_timeout(c, t),
        )
        self._blocked(rt)

    def _cond_timeout(self, cond, thread: SimThread) -> None:
        """The timed wait expired before a signal arrived."""
        mutex = cond.cancel_wait(thread, self)
        self.post_result(thread, False)
        if mutex is None or mutex.enqueue_blocked(thread):
            self.scheduler.make_runnable(thread, boost=True)
        # else: queued on the mutex; the hand-off will wake it

    def _h_cond_signal(self, thread, rt, op: op_mod.CondSignal) -> None:
        self.sync.cond(op.name).signal(self)
        self._complete_now(thread, rt, op, None)

    def _h_cond_broadcast(self, thread, rt, op: op_mod.CondBroadcast) -> None:
        held = None
        if op.expected_waiters is not None:
            # A blocking §6 barrier broadcast happens inside the barrier's
            # critical section: hand the most recently acquired mutex to
            # the condition variable so the waiters it is waiting for can
            # get in (it is re-acquired before the broadcaster resumes).
            held = self._most_recent_mutex_of(thread)
        proceeded = self.sync.cond(op.name).broadcast(
            thread, self, expected_waiters=op.expected_waiters, held_mutex=held
        )
        if proceeded:
            self._complete_now(thread, rt, op, None)
        else:
            self._blocked(rt)

    def _most_recent_mutex_of(self, thread: SimThread):
        held = [m for m in self.sync.all_mutexes().values() if m.owner is thread]
        if not held:
            return None
        return max(held, key=lambda m: m.acquired_seq)

    def _h_rw_rdlock(self, thread, rt, op: op_mod.RwRdLock) -> None:
        if self.sync.rwlock(op.name).rdlock(thread, self):
            self._complete_now(thread, rt, op, None)
        else:
            self._blocked(rt)

    def _h_rw_wrlock(self, thread, rt, op: op_mod.RwWrLock) -> None:
        if self.sync.rwlock(op.name).wrlock(thread, self):
            self._complete_now(thread, rt, op, None)
        else:
            self._blocked(rt)

    def _h_rw_tryrdlock(self, thread, rt, op: op_mod.RwTryRdLock) -> None:
        ok = self.sync.rwlock(op.name).tryrdlock(thread)
        self._complete_now(thread, rt, op, ok, Status.OK if ok else Status.BUSY)

    def _h_rw_trywrlock(self, thread, rt, op: op_mod.RwTryWrLock) -> None:
        ok = self.sync.rwlock(op.name).trywrlock(thread)
        self._complete_now(thread, rt, op, ok, Status.OK if ok else Status.BUSY)

    def _h_rw_unlock(self, thread, rt, op: op_mod.RwUnlock) -> None:
        self.sync.rwlock(op.name).unlock(thread, self)
        self._complete_now(thread, rt, op, None)

    def _h_resched(self, thread, rt, op: op_mod.Resched) -> None:
        # internal scheduling point: no record, no cost, stay on the CPU
        rt.current_op = None
        rt.pending_result = None
        self.need_step(thread)

    def _h_delay(self, thread, rt, op: op_mod.Delay) -> None:
        rt.current_op = None  # not a library call: nothing to record
        self.scheduler.sleep_current(thread, op.duration_us)

    def _h_io_wait(self, thread, rt, op: op_mod.IoWait) -> None:
        # the §6 extension: a recorded blocking I/O — the thread sleeps
        # without a processor and the return is stamped when it resumes
        self._blocked(rt)
        self.scheduler.sleep_current(thread, op.duration_us)

    def _h_noop(self, thread, rt, op: op_mod.Noop) -> None:
        status = Status.BUSY if op.busy else Status.OK
        self._complete_now(thread, rt, op, not op.busy, status)

    def _h_shared_access(self, thread, rt, op: op_mod.Op) -> None:
        # record-only instrumentation point: no blocking, no side effect
        self._complete_now(thread, rt, op, None)

    def _h_thr_create(self, thread, rt, op: op_mod.ThrCreate) -> None:
        child = self._spawn(thread, op)
        self._complete_now(thread, rt, op, int(child.tid), target=int(child.tid))

    def _h_thr_join(self, thread, rt, op: op_mod.ThrJoin) -> None:
        if op.tid is None:
            if self._zombie_order:
                tid = self._zombie_order.pop(0)
                self._reap(tid)
                self._complete_now(thread, rt, op, tid, target=tid)
            else:
                if not self._any_joinable():
                    raise DeadlockError(
                        f"T{int(thread.tid)} joins but no joinable thread exists"
                    )
                self._wildcard_joiners.append(thread)
                self.block(thread, "thr_join <any>")
                self._blocked(rt)
            return
        target = self.threads.get(op.tid)
        if target is None:
            raise SimulationError(f"thr_join of unknown thread T{op.tid}")
        if target.state is ThreadState.DEAD:
            raise SimulationError(f"thr_join of already-joined T{op.tid}")
        if target.state is ThreadState.ZOMBIE:
            self._reap(op.tid)
            self._complete_now(thread, rt, op, op.tid)
        else:
            self._joiners.setdefault(op.tid, []).append(thread)
            self.block(thread, f"thr_join T{op.tid}")
            self._blocked(rt)

    def _any_joinable(self) -> bool:
        return any(
            t.alive and int(t.tid) != int(MAIN_THREAD_ID) for t in self.threads.values()
        )

    def _h_thr_exit(self, thread, rt, op: op_mod.ThrExit) -> None:
        # single-record primitive: the probe's final act is to call the
        # real thr_exit, which never returns (paper fig. 3)
        if op.primitive is not None:
            self.builder.event_placed(
                tid=thread.tid,
                primitive=op.primitive,
                start_us=rt.op_call_time_us,
                end_us=self.engine.now_us,
                cpu=thread.last_cpu,
                source=op.source,
            )
        rt.current_op = None
        self.scheduler.thread_exited(thread)
        self._notify_joiners(thread)

    def _h_thr_yield(self, thread, rt, op: op_mod.ThrYield) -> None:
        self._blocked(rt)  # the call returns when the thread runs again
        self.scheduler.yield_current(thread)

    def _h_thr_setprio(self, thread, rt, op: op_mod.ThrSetPrio) -> None:
        thread.set_priority(op.priority)
        self._complete_now(thread, rt, op, None)

    def _h_thr_setconcurrency(self, thread, rt, op: op_mod.ThrSetConcurrency) -> None:
        self.scheduler.set_concurrency(op.level)
        self._complete_now(thread, rt, op, None)

    _HANDLERS = {
        op_mod.MutexLock: _h_mutex_lock,
        op_mod.MutexTrylock: _h_mutex_trylock,
        op_mod.MutexUnlock: _h_mutex_unlock,
        op_mod.SemaInit: _h_sema_init,
        op_mod.SemaWait: _h_sema_wait,
        op_mod.SemaTryWait: _h_sema_trywait,
        op_mod.SemaPost: _h_sema_post,
        op_mod.CondWait: _h_cond_wait,
        op_mod.CondTimedWait: _h_cond_timedwait,
        op_mod.CondSignal: _h_cond_signal,
        op_mod.CondBroadcast: _h_cond_broadcast,
        op_mod.RwRdLock: _h_rw_rdlock,
        op_mod.RwWrLock: _h_rw_wrlock,
        op_mod.RwTryRdLock: _h_rw_tryrdlock,
        op_mod.RwTryWrLock: _h_rw_trywrlock,
        op_mod.RwUnlock: _h_rw_unlock,
        op_mod.Resched: _h_resched,
        op_mod.Delay: _h_delay,
        op_mod.IoWait: _h_io_wait,
        op_mod.Noop: _h_noop,
        op_mod.SharedRead: _h_shared_access,
        op_mod.SharedWrite: _h_shared_access,
        op_mod.ThrCreate: _h_thr_create,
        op_mod.ThrJoin: _h_thr_join,
        op_mod.ThrExit: _h_thr_exit,
        op_mod.ThrYield: _h_thr_yield,
        op_mod.ThrSetPrio: _h_thr_setprio,
        op_mod.ThrSetConcurrency: _h_thr_setconcurrency,
    }

    # ==================================================================
    # thread creation / exit plumbing
    # ==================================================================

    def _spawn(self, creator: SimThread, op: op_mod.ThrCreate) -> SimThread:
        if self._replay_plan is not None:
            if op.replay_tid is None:
                raise SimulationError("replay thr_create without a thread id")
            tid = op.replay_tid
            if tid not in self._replay_plan.steps:
                raise SimulationError(f"replay plan has no steps for T{tid}")
            meta = self._replay_plan.meta.get(tid, ReplayThreadMeta(tid))
            behavior: ThreadBehavior = ReplayBehavior(self._replay_plan.steps[tid])
            func_name = meta.func_name
            bound = op.bound or meta.bound
            ctx = None
        else:
            if op.func is None:
                raise ProgramError("thr_create without a start routine")
            tid = next(self._next_tid)
            func_name = op.name or getattr(op.func, "__name__", "thread")
            bound = op.bound
            assert self._program is not None and self._shared is not None
            ctx = ThreadCtx(
                tid=tid,
                shared=self._shared,
                rng=self._program.make_rng(tid),
                args=tuple(op.args),
            )
            behavior = LiveBehavior(op.func(ctx), perturb=self.perturb)
        if tid in self.threads:
            raise SimulationError(f"duplicate thread id {tid}")
        child = SimThread(
            tid=ThreadId(tid),
            func_name=func_name,
            priority=op.priority if op.priority is not None else DEFAULT_USER_PRIORITY,
            bound=bound,
            bound_cpu=op.cpu,
        )
        self.threads[tid] = child
        self._rt[tid] = _ThreadRt(behavior=behavior, ctx=ctx)
        if self.probe is not None:
            self.probe.note_thread_function(tid, func_name)
        self.scheduler.register_thread(child, waker_cpu=self._current_cpu)
        return child

    def _notify_joiners(self, exited: SimThread) -> None:
        tid = int(exited.tid)
        joiners = self._joiners.pop(tid, [])
        if joiners:
            joiner = joiners.pop(0)
            if joiners:
                self._joiners[tid] = joiners
            self._reap(tid)
            self.wake(joiner, result=tid)
            return
        if self._wildcard_joiners:
            joiner = self._wildcard_joiners.pop(0)
            self._reap(tid)
            self.wake(joiner, result=tid)
            return
        self._zombie_order.append(tid)

    def _reap(self, tid: int) -> None:
        thread = self.threads[tid]
        if thread.state is not ThreadState.ZOMBIE:
            raise SimulationError(f"reaping non-zombie T{tid}")
        thread.state = ThreadState.DEAD
        if tid in self._zombie_order:
            self._zombie_order.remove(tid)

    # ==================================================================
    # recording (the probe)
    # ==================================================================

    def _emit_marker(self, primitive: Primitive, thread: SimThread) -> None:
        if self.probe is None:
            return
        self.probe.record(
            EventRecord(
                time_us=self.engine.now_us,
                tid=thread.tid,
                phase=Phase.CALL,
                primitive=primitive,
            )
        )
        self._rt[int(thread.tid)].extra_us += self.probe.overhead_us

    def _emit_record(
        self,
        thread: SimThread,
        op: op_mod.Op,
        phase: Phase,
        time_us: int,
        *,
        status: Optional[Status] = None,
        target: Optional[int] = None,
    ) -> None:
        if self.probe is None or op.primitive is None:
            return
        obj2 = None
        arg = None
        if isinstance(op, (op_mod.CondWait, op_mod.CondTimedWait)) and op.mutex:
            obj2 = op_mod.mutex_id(op.mutex)
        if isinstance(op, op_mod.CondTimedWait):
            arg = op.timeout_us
        elif isinstance(op, op_mod.IoWait):
            arg = op.duration_us
        elif isinstance(op, op_mod.SemaInit):
            arg = op.count
        elif isinstance(op, op_mod.ThrSetPrio):
            arg = op.priority
        elif isinstance(op, op_mod.ThrSetConcurrency):
            arg = op.level
        elif isinstance(op, op_mod.ThrCreate):
            arg = 1 if op.bound else 0
        self.probe.record(
            EventRecord(
                time_us=time_us,
                tid=thread.tid,
                phase=phase,
                primitive=op.primitive,
                obj=op.obj,
                obj2=obj2,
                target=ThreadId(target) if target is not None else None,
                arg=arg,
                status=status,
                source=op.source,
            )
        )


def simulate_program(
    program: Program,
    config: SimConfig,
    *,
    probe: Optional[ProbeAPI] = None,
    perturb: Optional[Callable[[int], int]] = None,
) -> SimulationResult:
    """Convenience wrapper: one live execution of *program* under *config*."""
    return Simulator(config, probe=probe, perturb=perturb).run_program(program)
