"""Exception hierarchy for the VPPB reproduction.

Every error raised by this package derives from :class:`VppbError`, so
callers can catch one type.  Sub-hierarchies mirror the three tool parts:
recording, simulation, and visualisation, plus trace/log-format errors.
"""

from __future__ import annotations

__all__ = [
    "VppbError",
    "TraceError",
    "LogFormatError",
    "RecorderError",
    "MonitorabilityError",
    "SimulationError",
    "DeadlockError",
    "LivelockError",
    "BudgetExceededError",
    "ReplayDivergenceError",
    "ConfigError",
    "AnalysisError",
    "CalibrationError",
    "VisualizationError",
    "ProgramError",
]


class VppbError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class TraceError(VppbError):
    """A trace is malformed or internally inconsistent."""


class LogFormatError(TraceError):
    """A log file could not be parsed.

    Carries the offending line number, the raw line text, the column of
    the offending token within it, and the originating file path when
    available, so every parse failure can be reported as a caret snippet
    instead of a bare line number.
    """

    def __init__(
        self,
        message: str,
        *,
        lineno: int | None = None,
        line: str | None = None,
        column: int | None = None,
        source: str | None = None,
    ):
        self.message = message
        self.lineno = lineno
        self.line = line
        self.column = column
        self.source = source
        super().__init__(message)

    def __str__(self) -> str:
        prefix = ""
        if self.source:
            prefix += f"{self.source}: "
        if self.lineno is not None:
            prefix += f"line {self.lineno}: "
        return prefix + self.message

    def snippet(self) -> str:
        """The offending line with a caret under the bad token, or ''."""
        if self.line is None:
            return ""
        out = f"    {self.line}"
        if self.column is not None and 0 <= self.column <= len(self.line):
            out += "\n    " + " " * self.column + "^"
        return out


class RecorderError(VppbError):
    """The Recorder could not monitor the program."""


class MonitorabilityError(RecorderError):
    """The program cannot run on a single LWP (§6).

    Raised for the failure modes that excluded Barnes/Radiosity/Cholesky/FMM
    (spinning on a variable livelocks the single LWP) and Raytrace/Volrend
    (task stealing degenerates to one thread doing all work) from the
    paper's validation.
    """


class SimulationError(VppbError):
    """The Simulator reached an invalid state."""


class DeadlockError(SimulationError):
    """No runnable thread exists but threads are still blocked."""

    def __init__(self, message: str, *, blocked: tuple[int, ...] = ()):
        self.blocked = blocked
        super().__init__(message)


class LivelockError(SimulationError):
    """Simulated time stopped advancing (e.g. a spin loop on one LWP)."""


class BudgetExceededError(SimulationError):
    """A watchdog budget (wall-clock or event count) was exhausted.

    Unlike :class:`LivelockError` this is not a verdict about the
    simulated program — it only says the run outgrew the resources the
    caller was willing to spend on it.
    """

    def __init__(self, message: str, *, budget: str = ""):
        self.budget = budget
        super().__init__(message)


class ReplayDivergenceError(SimulationError):
    """A replayed event could not be applied to the simulated state.

    Signals that the trace and the simulator's synchronisation model
    disagree — e.g. a mutex unlock by a thread that does not hold it.
    Carries the diverging thread when known so a partial result can point
    at it.
    """

    def __init__(self, message: str, *, tid: int | None = None):
        self.tid = tid
        super().__init__(message)


class ConfigError(VppbError):
    """A simulation configuration is invalid (§3.2 parameters)."""


class AnalysisError(VppbError):
    """An analysis was asked something it cannot answer.

    Raised for degenerate metric inputs (a zero real speed-up has no
    defined prediction error) and for bad lint requests (unknown rule
    ids, malformed severity thresholds).
    """


class CalibrationError(VppbError):
    """Calibration could not fit or validate the cost model.

    Raised when the measurement suite cannot be built (unknown workload,
    unmonitorable program), when an objective evaluation loses a
    simulation job, or when a profile fails structural checks (wrong
    version, parameters outside the tunable space).
    """


class VisualizationError(VppbError):
    """A visualisation request is invalid (bad interval, unknown event...)."""


class ProgramError(VppbError):
    """A virtual program misused the DSL (bad op, unknown object...)."""
