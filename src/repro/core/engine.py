"""Discrete-event simulation core.

"Our simulation technique is an ordinary event-driven approach" (§3.2).
This module provides that core: a monotonically advancing integer-µs clock
and a priority queue of scheduled actions.  The Solaris scheduling model
sits on top (:mod:`repro.solaris.scheduler`); this layer knows nothing
about threads or CPUs.

Scheduled actions are cancellable (needed for quantum expiry timers that a
block cancels, and for timed waits a signal cancels).  Ties are broken by
insertion order so runs are fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.errors import BudgetExceededError, LivelockError, SimulationError

__all__ = ["ScheduledEvent", "EventQueue", "Engine", "Watchdog"]


@dataclass
class Watchdog:
    """Progress budgets for one engine run.

    The engine's built-in ``max_events``/``max_time_us`` are livelock
    *verdicts* (the simulated program is broken); a watchdog is a
    *resource budget* (the caller will not wait longer), raised as
    :class:`~repro.core.errors.BudgetExceededError` so the two are
    distinguishable.  ``max_wall_s`` is checked every ``check_every``
    events to keep the hot loop cheap.
    """

    max_events: Optional[int] = None
    max_time_us: Optional[int] = None
    max_wall_s: Optional[float] = None
    check_every: int = 4096

    def __post_init__(self) -> None:
        if self.check_every < 1:
            raise ValueError(f"check_every must be >= 1, got {self.check_every}")


class ScheduledEvent:
    """Handle to an action scheduled on the engine.

    ``cancel()`` marks the event dead; dead events are skipped when popped
    (lazy deletion — O(1) cancel, and the heap stays a heap).
    """

    __slots__ = ("time_us", "seq", "action", "label", "cancelled")

    def __init__(self, time_us: int, seq: int, action: Callable[[], None], label: str):
        self.time_us = time_us
        self.seq = seq
        self.action = action
        self.label = label
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time_us, self.seq) < (other.time_us, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " CANCELLED" if self.cancelled else ""
        return f"<event {self.label!r} @{self.time_us}us{state}>"


class EventQueue:
    """A lazy-deletion binary heap of :class:`ScheduledEvent`.

    The heap stores ``(time_us, seq, event)`` tuples so ordering is decided
    by C-level tuple comparison; ``ScheduledEvent.__lt__`` exists only for
    callers that compare handles directly.  Profiling showed the Python
    ``__lt__`` dominating replay (one call per sift step per event).
    """

    def __init__(self) -> None:
        self._heap: List[tuple] = []
        self._counter = itertools.count()

    def push(self, time_us: int, action: Callable[[], None], label: str = "") -> ScheduledEvent:
        ev = ScheduledEvent(time_us, next(self._counter), action, label)
        heapq.heappush(self._heap, (time_us, ev.seq, ev))
        return ev

    def repush(self, time_us: int, ev: ScheduledEvent) -> ScheduledEvent:
        """Re-arm an already-executed event object at a new time.

        The replay fast path recycles its one-in-flight-per-thread burst
        and quantum events through this instead of allocating a fresh
        :class:`ScheduledEvent` per arm.  The caller must guarantee *ev*
        is live (not cancelled) and no longer in the heap — i.e. its
        previous occurrence was popped and executed.
        """
        seq = next(self._counter)
        ev.time_us = time_us
        ev.seq = seq
        heapq.heappush(self._heap, (time_us, seq, ev))
        return ev

    def pop(self) -> Optional[ScheduledEvent]:
        """Pop the earliest live event, or None when the queue is drained."""
        while self._heap:
            ev = heapq.heappop(self._heap)[2]
            if not ev.cancelled:
                return ev
        return None

    def peek_time(self) -> Optional[int]:
        """Timestamp of the earliest live event without popping it."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return sum(1 for entry in self._heap if not entry[2].cancelled)

    def __bool__(self) -> bool:
        return self.peek_time() is not None


class Engine:
    """The event loop: a clock plus an :class:`EventQueue`.

    Parameters
    ----------
    max_events:
        Safety valve against livelock: if more than this many events execute
        the run aborts with :class:`~repro.core.errors.LivelockError`.  The
        paper notes (§6) that a thread spinning on a variable livelocks the
        one-LWP monitored run; our DSL cannot spin, but a buggy behaviour
        could schedule zero-length work forever, and this bound catches it.
    max_time_us:
        Optional wall-clock ceiling on simulated time.
    """

    def __init__(
        self,
        *,
        max_events: int = 50_000_000,
        max_time_us: Optional[int] = None,
        watchdog: Optional[Watchdog] = None,
    ):
        self.now_us: int = 0
        self.queue = EventQueue()
        self.max_events = max_events
        self.max_time_us = max_time_us
        self.watchdog = watchdog
        self.events_executed = 0
        self._wall_start: Optional[float] = None

    # ------------------------------------------------------------------

    def schedule_at(self, time_us: int, action: Callable[[], None], label: str = "") -> ScheduledEvent:
        """Schedule *action* at absolute simulated time *time_us*."""
        if time_us < self.now_us:
            raise SimulationError(
                f"cannot schedule in the past: now={self.now_us} target={time_us} ({label})"
            )
        return self.queue.push(time_us, action, label)

    def schedule_in(self, delay_us: int, action: Callable[[], None], label: str = "") -> ScheduledEvent:
        """Schedule *action* *delay_us* µs from now."""
        if delay_us < 0:
            raise SimulationError(f"negative delay {delay_us} ({label})")
        return self.queue.push(self.now_us + delay_us, action, label)

    # ------------------------------------------------------------------

    def run(self) -> int:
        """Run until the queue drains; return the final simulated time.

        This is the innermost loop of every simulation, so the hot state is
        bound to locals: the heap list is consumed directly (actions push
        onto the same list object via :meth:`EventQueue.push`), ``heappop``
        is a local, and the budget checks are inlined integer compares with
        exactly the legacy trip points.  Only the wall-clock probe is
        amortised (every ``check_every`` events, as before).
        """
        watchdog = self.watchdog
        if watchdog is not None and self._wall_start is None:
            self._wall_start = time.monotonic()
        heap = self.queue._heap
        heappop = heapq.heappop
        max_events = self.max_events
        max_time_us = self.max_time_us
        if watchdog is not None:
            wd_events = watchdog.max_events
            wd_time_us = watchdog.max_time_us
            wd_wall_s = watchdog.max_wall_s
            check_every = watchdog.check_every
        else:
            wd_events = wd_time_us = wd_wall_s = None
            check_every = 0
        executed = self.events_executed
        try:
            while heap:
                entry = heappop(heap)
                ev = entry[2]
                if ev.cancelled:
                    continue
                time_us = entry[0]
                if time_us < self.now_us:
                    raise SimulationError(
                        f"time went backwards: now={self.now_us}, event={ev!r}"
                    )
                self.now_us = time_us
                executed += 1
                if executed > max_events:
                    raise LivelockError(
                        f"exceeded {max_events} events at t={self.now_us}us; "
                        "simulation is likely livelocked"
                    )
                if max_time_us is not None and time_us > max_time_us:
                    raise LivelockError(
                        f"simulated time exceeded ceiling {max_time_us}us"
                    )
                if wd_events is not None and executed > wd_events:
                    raise BudgetExceededError(
                        f"event budget of {wd_events} exhausted "
                        f"at t={self.now_us}us",
                        budget="events",
                    )
                if wd_time_us is not None and time_us > wd_time_us:
                    raise BudgetExceededError(
                        f"simulated-time budget of {wd_time_us}us exhausted",
                        budget="simulated-time",
                    )
                if (
                    wd_wall_s is not None
                    and executed % check_every == 0
                    and time.monotonic() - (self._wall_start or 0.0) > wd_wall_s
                ):
                    raise BudgetExceededError(
                        f"wall-clock budget of {wd_wall_s}s exhausted "
                        f"after {executed} events (t={self.now_us}us)",
                        budget="wall-clock",
                    )
                ev.action()
            return self.now_us
        finally:
            self.events_executed = executed

    def step(self) -> bool:
        """Execute a single event; return False when the queue is empty."""
        ev = self.queue.pop()
        if ev is None:
            return False
        self.now_us = ev.time_us
        self.events_executed += 1
        ev.action()
        return True
