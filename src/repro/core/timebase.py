"""Simulated time base.

All simulated time in this package is kept as *integer microseconds*
(``int``).  The paper's Recorder stamps events with wall-clock time at a
resolution of 1 microsecond (§3.1), and using integers end-to-end removes
every floating-point comparison hazard from the discrete-event core: two
events scheduled for "the same time" really compare equal, and replaying a
trace is bit-reproducible.

Helpers here convert between human-friendly units and the internal
representation, and format timestamps for logs and rendered graphs.
"""

from __future__ import annotations

__all__ = [
    "US_PER_MS",
    "US_PER_SECOND",
    "from_seconds",
    "from_millis",
    "to_seconds",
    "to_millis",
    "format_us",
    "check_time",
    "check_duration",
]

US_PER_MS = 1_000
US_PER_SECOND = 1_000_000


def from_seconds(seconds: float) -> int:
    """Convert seconds to integer microseconds (rounding to nearest)."""
    return round(seconds * US_PER_SECOND)


def from_millis(millis: float) -> int:
    """Convert milliseconds to integer microseconds (rounding to nearest)."""
    return round(millis * US_PER_MS)


def to_seconds(us: int) -> float:
    """Convert integer microseconds to float seconds."""
    return us / US_PER_SECOND


def to_millis(us: int) -> float:
    """Convert integer microseconds to float milliseconds."""
    return us / US_PER_MS


def format_us(us: int, *, decimals: int = 6) -> str:
    """Render a microsecond timestamp as fixed-point seconds.

    This is the format used in the paper's log listings (``0.53``,
    ``0.74`` ...) and in our log files, with a configurable number of
    decimal places.
    """
    if decimals < 0 or decimals > 6:
        raise ValueError("decimals must be in [0, 6]")
    negative = us < 0
    us = abs(us)
    whole, frac = divmod(us, US_PER_SECOND)
    text = f"{whole}.{frac:06d}"
    if decimals < 6:
        # Truncate (not round) so the text never overstates precision.
        text = text[: len(text) - (6 - decimals)]
        if decimals == 0:
            text = text.rstrip(".")
    return f"-{text}" if negative else text


def check_time(us: object, name: str = "time") -> int:
    """Validate that *us* is a non-negative integer timestamp and return it."""
    if isinstance(us, bool) or not isinstance(us, int):
        raise TypeError(f"{name} must be an int (µs), got {type(us).__name__}")
    if us < 0:
        raise ValueError(f"{name} must be >= 0, got {us}")
    return us


def check_duration(us: object, name: str = "duration") -> int:
    """Validate that *us* is a non-negative integer duration and return it."""
    return check_time(us, name)
