"""Thread-library primitive taxonomy and recorded-event structure.

The Recorder (§3.1 of the paper) interposes on every call the program makes
to the Solaris thread library and logs, for each call, a *call* record and a
*return* record carrying: the timestamp (µs), the identity of the calling
thread, the primitive's name, the object the call concerns (which mutex,
which semaphore...), the outcome, and the source-code location of the call.

This module defines that vocabulary:

* :class:`Primitive` — every thread-library entry point VPPB traces,
* :class:`Phase` — call vs. return record,
* :class:`Status` — the outcome stamped on return records,
* :class:`SourceLocation` — the ``file:line`` the call was made from
  (the paper recovers this from the SPARC ``%i7`` return address plus a
  debugger; we capture it directly), and
* :class:`EventRecord` — one immutable log record.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional

from repro.core.ids import SyncObjectId, ThreadId

__all__ = [
    "Primitive",
    "Phase",
    "Status",
    "SourceLocation",
    "EventRecord",
    "BLOCKING_PRIMITIVES",
    "TRY_PRIMITIVES",
    "ACCESS_PRIMITIVES",
]


class Primitive(enum.Enum):
    """Every thread-library entry point the Recorder traces.

    Names follow the Solaris 2.x ``libthread``/``libc`` API that the paper
    instruments.  ``START_COLLECT`` / ``END_COLLECT`` are the Recorder's own
    markers delimiting the monitored interval (``start_collect`` appears at
    time 0.00 in the paper's fig. 2 log).
    """

    # --- recorder markers -------------------------------------------------
    START_COLLECT = "start_collect"
    END_COLLECT = "end_collect"
    #: Emitted by the interposed start routine the moment a created thread
    #: first runs.  The real Recorder wraps the function pointer passed to
    #: ``thr_create`` (§3.1), so it observes exactly this moment; the
    #: Simulator needs it to attribute the thread's first CPU burst.
    THREAD_START = "thread_start"

    # --- I/O (the §6 "future work" extension: the paper's technique
    # "does not model I/O"; this primitive lifts that, recording blocking
    # I/O waits so replay can overlap them across processors) -----------
    IO_WAIT = "io_wait"

    # --- shared-variable accesses (Eraser-style instrumentation: the
    # probe the lockset race rule of `vppb lint` consumes.  A real
    # recorder gets these from binary instrumentation of loads/stores;
    # our virtual programs declare them explicitly.  Record-only: no
    # scheduling effect, negligible cost) -------------------------------
    SHARED_READ = "shared_read"
    SHARED_WRITE = "shared_write"

    # --- thread management -------------------------------------------------
    THR_CREATE = "thr_create"
    THR_EXIT = "thr_exit"
    THR_JOIN = "thr_join"
    THR_YIELD = "thr_yield"
    THR_SETPRIO = "thr_setprio"
    THR_SETCONCURRENCY = "thr_setconcurrency"

    # --- mutexes -----------------------------------------------------------
    MUTEX_LOCK = "mutex_lock"
    MUTEX_TRYLOCK = "mutex_trylock"
    MUTEX_UNLOCK = "mutex_unlock"

    # --- counting semaphores -----------------------------------------------
    SEMA_INIT = "sema_init"
    SEMA_WAIT = "sema_wait"
    SEMA_TRYWAIT = "sema_trywait"
    SEMA_POST = "sema_post"

    # --- condition variables -----------------------------------------------
    COND_WAIT = "cond_wait"
    COND_TIMEDWAIT = "cond_timedwait"
    COND_SIGNAL = "cond_signal"
    COND_BROADCAST = "cond_broadcast"

    # --- readers/writer locks ----------------------------------------------
    RW_RDLOCK = "rw_rdlock"
    RW_WRLOCK = "rw_wrlock"
    RW_TRYRDLOCK = "rw_tryrdlock"
    RW_TRYWRLOCK = "rw_trywrlock"
    RW_UNLOCK = "rw_unlock"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Primitives that can block the calling thread on a uni-processor.
BLOCKING_PRIMITIVES = frozenset(
    {
        Primitive.THR_JOIN,
        Primitive.MUTEX_LOCK,
        Primitive.SEMA_WAIT,
        Primitive.COND_WAIT,
        Primitive.COND_TIMEDWAIT,
        Primitive.RW_RDLOCK,
        Primitive.RW_WRLOCK,
    }
)

#: Non-blocking "try" variants whose recorded outcome pins the replay (§3.2).
TRY_PRIMITIVES = frozenset(
    {
        Primitive.MUTEX_TRYLOCK,
        Primitive.SEMA_TRYWAIT,
        Primitive.RW_TRYRDLOCK,
        Primitive.RW_TRYWRLOCK,
    }
)

#: Shared-variable access records consumed by the lockset race rule.
ACCESS_PRIMITIVES = frozenset(
    {
        Primitive.SHARED_READ,
        Primitive.SHARED_WRITE,
    }
)


class Phase(enum.Enum):
    """Whether a record was taken before (call) or after (return) the call."""

    CALL = "call"
    RET = "ret"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class Status(enum.Enum):
    """Outcome stamped on a return record.

    ``OK`` — the call succeeded (the paper's log prints ``ok``).
    ``BUSY`` — a try-operation failed to acquire the object (``EBUSY``).
    ``TIMEOUT`` — ``cond_timedwait`` expired (``ETIME``); replayed as a
    pure delay per §3.2.
    """

    OK = "ok"
    BUSY = "busy"
    TIMEOUT = "timeout"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, slots=True)
class SourceLocation:
    """Source position of a thread-library call.

    The real Recorder saves the caller's return address (SPARC ``%i7``) and
    later maps it to ``file:line`` with a debugger; we capture the location
    directly at probe time.  ``function`` is filled for ``thr_create`` (the
    start routine's name, which the Visualizer shows in event popups).
    """

    file: str
    line: int
    function: str = ""

    def __str__(self) -> str:
        text = f"{self.file}:{self.line}"
        if self.function:
            text += f" ({self.function})"
        return text


@dataclass(frozen=True, slots=True)
class EventRecord:
    """One record in the Recorder's log.

    Attributes
    ----------
    time_us:
        Wall-clock timestamp in integer microseconds (1 µs resolution, §3.1).
    tid:
        Identity of the thread that generated the event.
    phase:
        :attr:`Phase.CALL` (probe fired before the library call) or
        :attr:`Phase.RET` (after it returned).
    primitive:
        Which thread-library entry point was called.
    obj:
        The synchronisation object concerned, if any.
    obj2:
        A secondary object for primitives taking two: the mutex argument
        of ``cond_wait`` / ``cond_timedwait``.
    target:
        Peer thread id: the created thread for ``thr_create``, the joined
        thread for ``thr_join`` (``None`` means a wildcard join, §6).
    arg:
        Integer argument: new priority for ``thr_setprio``, concurrency
        level for ``thr_setconcurrency``, timeout in µs for
        ``cond_timedwait`` call records.
    status:
        Outcome; only meaningful on return records.
    source:
        Where in the program the call was made.
    """

    time_us: int
    tid: ThreadId
    phase: Phase
    primitive: Primitive
    obj: Optional[SyncObjectId] = None
    obj2: Optional[SyncObjectId] = None
    target: Optional[ThreadId] = None
    arg: Optional[int] = None
    status: Optional[Status] = None
    source: Optional[SourceLocation] = None

    def __post_init__(self) -> None:
        if self.time_us < 0:
            raise ValueError(f"negative timestamp: {self.time_us}")

    # -- convenience predicates -------------------------------------------

    @property
    def is_call(self) -> bool:
        return self.phase is Phase.CALL

    @property
    def is_ret(self) -> bool:
        return self.phase is Phase.RET

    @property
    def is_marker(self) -> bool:
        return self.primitive in (
            Primitive.START_COLLECT,
            Primitive.END_COLLECT,
            Primitive.THREAD_START,
        )

    def shifted(self, delta_us: int) -> "EventRecord":
        """Return a copy with the timestamp moved by *delta_us*."""
        return replace(self, time_us=self.time_us + delta_us)

    def brief(self) -> str:
        """One-line human-readable rendering (used in log dumps and tests)."""
        parts = [f"T{int(self.tid)}", str(self.phase), str(self.primitive)]
        if self.obj is not None:
            parts.append(str(self.obj))
        if self.target is not None:
            parts.append(f"T{int(self.target)}")
        if self.arg is not None:
            parts.append(str(self.arg))
        if self.status is not None:
            parts.append(str(self.status))
        return " ".join(parts)
