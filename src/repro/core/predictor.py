"""Trace-driven prediction: compile a recorded log into a replay plan.

This is the front half of the paper's Simulator (§3.2 and fig. 4):

1. "all events in the log file from the Recorder are sorted into a set of
   lists, one list for each thread";
2. each thread's list is turned into *(CPU burst, operation)* steps.  The
   burst before a call is the time the thread spent on the single LWP
   since it last returned from the library — on a one-LWP monitored run a
   thread holds the processor continuously between its return from one
   call and its entry into the next, so per-thread timestamp deltas *are*
   CPU demand;
3. the §3.2/§6 replay rules are applied:

   * a try-operation that succeeded in the log replays as the blocking
     variant; one that failed replays as a no-action record;
   * a ``cond_timedwait`` that timed out replays as a plain delay;
     otherwise it replays as an ordinary ``cond_wait``;
   * ``cond_broadcast`` carries the number of threads it released in the
     log, so the barrier heuristic can hold the broadcaster until the same
     number of waiters have arrived;
   * a wildcard ``thr_join`` stays a wildcard (and "may not be the one
     that exited in the log file").

The resulting :class:`~repro.core.simulator.ReplayPlan` can be simulated
under any hardware/scheduling configuration — that is the whole point of
the tool: one monitored run, any number of processors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.config import SimConfig
from repro.core.engine import Watchdog
from repro.core.errors import TraceError
from repro.core.events import EventRecord, Phase, Primitive, Status
from repro.core.ids import MAIN_THREAD_ID
from repro.core.result import SimulationResult
from repro.core.simulator import ReplayPlan, ReplayThreadMeta, Simulator
from repro.core.trace import Trace
from repro.program import ops as op_mod
from repro.program.behavior import Step

__all__ = [
    "compile_trace",
    "predict",
    "SpeedupPrediction",
    "predict_speedup",
    "sweep_speedup",
]


# ---------------------------------------------------------------------------
# broadcast release counts (§6 barrier heuristic support)
# ---------------------------------------------------------------------------


def _broadcast_expected_counts(trace: Trace) -> Dict[int, int]:
    """For every ``cond_broadcast`` call record, the number of threads it
    released in the log.

    Computed by sweeping the global log once, maintaining the set of open
    condition waits per condition variable; waits that ultimately timed out
    are not counted (no broadcast released them).
    """
    # final status of each wait, keyed by the identity of its CALL record
    final_status: Dict[int, Status] = {}
    open_calls: Dict[Tuple[int, str], EventRecord] = {}
    for rec in trace:
        if rec.primitive not in (Primitive.COND_WAIT, Primitive.COND_TIMEDWAIT):
            continue
        key = (int(rec.tid), rec.obj.name if rec.obj else "")
        if rec.phase is Phase.CALL:
            open_calls[key] = rec
        else:
            call = open_calls.pop(key, None)
            if call is not None:
                final_status[id(call)] = rec.status or Status.OK

    counts: Dict[int, int] = {}
    waiting: Dict[str, set] = {}
    for rec in trace:
        obj_name = rec.obj.name if rec.obj else ""
        if rec.primitive in (Primitive.COND_WAIT, Primitive.COND_TIMEDWAIT):
            waiters = waiting.setdefault(obj_name, set())
            if rec.phase is Phase.CALL:
                if final_status.get(id(rec), Status.OK) is not Status.TIMEOUT:
                    waiters.add(int(rec.tid))
            else:
                waiters.discard(int(rec.tid))
        elif rec.primitive is Primitive.COND_BROADCAST and rec.phase is Phase.CALL:
            counts[id(rec)] = len(waiting.get(obj_name, ()))
    return counts


# ---------------------------------------------------------------------------
# per-thread op reconstruction
# ---------------------------------------------------------------------------


def _op_from_records(
    call: EventRecord,
    ret: Optional[EventRecord],
    broadcast_counts: Dict[int, int],
) -> Optional[op_mod.Op]:
    """Apply the §3.2 replay rules to one recorded call."""
    prim = call.primitive
    obj_name = call.obj.name if call.obj is not None else ""
    mutex_name = call.obj2.name if call.obj2 is not None else ""
    status = ret.status if ret is not None else None
    src = call.source

    if prim is Primitive.MUTEX_LOCK:
        return op_mod.MutexLock(obj_name, source=src)
    if prim is Primitive.MUTEX_UNLOCK:
        return op_mod.MutexUnlock(obj_name, source=src)
    if prim is Primitive.MUTEX_TRYLOCK:
        if status is Status.OK:
            # "If the thread gained access to the lock in the log file,
            # the simulation will do a mutex_lock" (§3.2)
            return op_mod.MutexLock(obj_name, source=src)
        return op_mod.Noop(prim, call.obj, busy=True, source=src)

    if prim is Primitive.SEMA_INIT:
        return op_mod.SemaInit(obj_name, call.arg or 0, source=src)
    if prim is Primitive.SEMA_WAIT:
        return op_mod.SemaWait(obj_name, source=src)
    if prim is Primitive.SEMA_POST:
        return op_mod.SemaPost(obj_name, source=src)
    if prim is Primitive.SEMA_TRYWAIT:
        if status is Status.OK:
            return op_mod.SemaWait(obj_name, source=src)
        return op_mod.Noop(prim, call.obj, busy=True, source=src)

    if prim is Primitive.COND_WAIT:
        return op_mod.CondWait(obj_name, mutex_name, source=src)
    if prim is Primitive.COND_TIMEDWAIT:
        timeout = call.arg if call.arg is not None else 0
        if status is Status.TIMEOUT:
            # "handled as a delay if the operation timed out in the log
            # file" (§3.2)
            return op_mod.CondTimedWait(
                obj_name, mutex_name, timeout_us=timeout, forced_timeout=True, source=src
            )
        # "... and as an ordinary cond_wait operation otherwise"
        return op_mod.CondWait(obj_name, mutex_name, source=src)
    if prim is Primitive.COND_SIGNAL:
        return op_mod.CondSignal(obj_name, source=src)
    if prim is Primitive.COND_BROADCAST:
        return op_mod.CondBroadcast(
            obj_name,
            expected_waiters=broadcast_counts.get(id(call), 0),
            source=src,
        )

    if prim is Primitive.RW_RDLOCK:
        return op_mod.RwRdLock(obj_name, source=src)
    if prim is Primitive.RW_WRLOCK:
        return op_mod.RwWrLock(obj_name, source=src)
    if prim is Primitive.RW_UNLOCK:
        return op_mod.RwUnlock(obj_name, source=src)
    if prim is Primitive.RW_TRYRDLOCK:
        if status is Status.OK:
            return op_mod.RwRdLock(obj_name, source=src)
        return op_mod.Noop(prim, call.obj, busy=True, source=src)
    if prim is Primitive.RW_TRYWRLOCK:
        if status is Status.OK:
            return op_mod.RwWrLock(obj_name, source=src)
        return op_mod.Noop(prim, call.obj, busy=True, source=src)

    if prim is Primitive.SHARED_READ:
        return op_mod.SharedRead(obj_name, source=src)
    if prim is Primitive.SHARED_WRITE:
        return op_mod.SharedWrite(obj_name, source=src)

    if prim is Primitive.IO_WAIT:
        # the §6 I/O extension: replay the recorded wait as itself
        duration = call.arg
        if duration is None and ret is not None:
            duration = max(0, ret.time_us - call.time_us)
        return op_mod.IoWait(duration or 0, source=src)

    if prim is Primitive.THR_CREATE:
        target = (ret.target if ret is not None else None) or call.target
        if target is None:
            raise TraceError(f"thr_create without created thread id: {call.brief()}")
        return op_mod.ThrCreate(
            replay_tid=int(target), bound=bool(call.arg), source=src
        )
    if prim is Primitive.THR_JOIN:
        target = call.target
        return op_mod.ThrJoin(int(target) if target is not None else None, source=src)
    if prim is Primitive.THR_EXIT:
        return op_mod.ThrExit(source=src)
    if prim is Primitive.THR_YIELD:
        return op_mod.ThrYield(source=src)
    if prim is Primitive.THR_SETPRIO:
        return op_mod.ThrSetPrio(call.arg or 0, source=src)
    if prim is Primitive.THR_SETCONCURRENCY:
        return op_mod.ThrSetConcurrency(call.arg or 1, source=src)

    raise TraceError(f"cannot replay primitive {prim}")


def _compile_thread(
    tid: int,
    records: List[EventRecord],
    broadcast_counts: Dict[int, int],
) -> List[Step]:
    """Turn one thread's event list into replay steps (burst attribution)."""
    steps: List[Step] = []
    prev_resume: Optional[int] = None
    saw_exit = False

    i = 0
    n = len(records)
    while i < n:
        rec = records[i]
        if rec.primitive in (Primitive.START_COLLECT, Primitive.THREAD_START):
            prev_resume = rec.time_us
            i += 1
            continue
        if rec.primitive is Primitive.END_COLLECT:
            i += 1
            continue
        if rec.phase is not Phase.CALL:
            raise TraceError(f"T{tid}: unexpected return record {rec.brief()}")
        call = rec
        ret: Optional[EventRecord] = None
        if call.primitive is not Primitive.THR_EXIT:
            if i + 1 >= n:
                raise TraceError(f"T{tid}: call without return at end: {call.brief()}")
            ret = records[i + 1]
            if ret.phase is not Phase.RET or ret.primitive is not call.primitive:
                raise TraceError(
                    f"T{tid}: mismatched records {call.brief()} / {ret.brief()}"
                )
            i += 2
        else:
            saw_exit = True
            i += 1

        if prev_resume is None:
            work = 0  # no start marker (foreign log): first burst unknown
        else:
            work = max(0, call.time_us - prev_resume)
        op = _op_from_records(call, ret, broadcast_counts)
        if op is not None:
            steps.append(Step(work, op))
        prev_resume = (ret.time_us if ret is not None else call.time_us)

    if not saw_exit:
        steps.append(Step(0, op_mod.ThrExit()))
    return steps


# ---------------------------------------------------------------------------
# public API
# ---------------------------------------------------------------------------


def compile_trace(trace: Trace) -> ReplayPlan:
    """Compile a recorded trace into a replayable plan (fig. 4 stage)."""
    broadcast_counts = _broadcast_expected_counts(trace)
    per_thread = trace.per_thread()
    if not per_thread:
        raise TraceError("empty trace")

    bound_flags: Dict[int, bool] = {}
    for rec in trace:
        if rec.primitive is Primitive.THR_CREATE and rec.is_ret:
            # the return record carries the created thread's id and the
            # bound flag (live creates don't know the id at call time)
            target = rec.target
            if target is not None:
                bound_flags[int(target)] = bool(rec.arg)

    steps: Dict[int, List[Step]] = {}
    meta: Dict[int, ReplayThreadMeta] = {}
    for tid, records in per_thread.items():
        steps[int(tid)] = _compile_thread(int(tid), records, broadcast_counts)
        meta[int(tid)] = ReplayThreadMeta(
            tid=int(tid),
            func_name=trace.function_of(tid),
            bound=bound_flags.get(int(tid), False),
        )
    if int(MAIN_THREAD_ID) not in steps:
        raise TraceError("trace has no events for the main thread (T1)")
    return ReplayPlan(steps=steps, meta=meta, program_name=trace.meta.program)


def predict(
    trace: Trace,
    config: SimConfig,
    *,
    plan: Optional[ReplayPlan] = None,
    max_events: int = 50_000_000,
    watchdog: Optional[Watchdog] = None,
    strict: bool = True,
) -> SimulationResult:
    """Simulate the traced program on the given machine (fig. 1 (g)).

    A pre-compiled *plan* can be supplied to amortise compilation across a
    processor sweep; note that a plan is consumed by a single simulation
    only when it shares mutable state — our plans are re-usable because
    :class:`~repro.program.behavior.ReplayBehavior` copies the step lists.

    With ``strict=False`` a deadlocked, livelocked, diverged or
    over-budget replay returns a *partial*
    :class:`~repro.core.result.SimulationResult` (``result.incomplete``
    true, diagnosis in ``result.incompleteness``) instead of raising;
    *watchdog* adds wall-clock/event budgets on top of *max_events*.
    """
    if plan is None:
        plan = compile_trace(trace)
    sim = Simulator(config, max_events=max_events, watchdog=watchdog, strict=strict)
    return sim.run_replay(plan)


@dataclass(frozen=True)
class SpeedupPrediction:
    """A predicted speed-up figure for one processor count."""

    cpus: int
    uniprocessor_us: int
    makespan_us: int

    @property
    def speedup(self) -> float:
        return self.uniprocessor_us / self.makespan_us if self.makespan_us else 0.0


def predict_speedup(
    trace: Trace,
    cpus: int,
    *,
    base_config: Optional[SimConfig] = None,
    plan: Optional[ReplayPlan] = None,
    baseline_us: Optional[int] = None,
) -> SpeedupPrediction:
    """Predicted speed-up of the traced program on *cpus* processors.

    The default baseline is the replayed uni-processor execution (1 CPU,
    1 LWP), which by construction reproduces the monitored run — "how
    much faster than the run we actually measured".  Pass ``baseline_us``
    to use a different denominator, e.g. the monitored runtime of the
    *sequential* (one-thread) version of the program, which is the
    convention SPLASH-2 speed-up figures use (the Table 1 harness does
    this).
    """
    base = base_config or SimConfig()
    if plan is None:
        plan = compile_trace(trace)
    if baseline_us is None:
        from repro.program.uniexec import uniprocessor_config

        uni = predict(trace, uniprocessor_config(base), plan=plan)
        baseline_us = uni.makespan_us
    mp = predict(trace, base.with_cpus(cpus), plan=plan)
    return SpeedupPrediction(
        cpus=cpus, uniprocessor_us=baseline_us, makespan_us=mp.makespan_us
    )


def sweep_speedup(
    trace: Trace,
    cpu_counts: List[int],
    *,
    base_config: Optional[SimConfig] = None,
    baseline_us: Optional[int] = None,
) -> List[SpeedupPrediction]:
    """Predict speed-ups for several machine sizes from one trace."""
    plan = compile_trace(trace)
    return [
        predict_speedup(
            trace, n, base_config=base_config, plan=plan, baseline_us=baseline_us
        )
        for n in cpu_counts
    ]
