"""Identity types for threads, LWPs, CPUs and synchronisation objects.

Solaris assigns small integer ids to threads (the paper's example program
gets ``main = 1``, ``thr_a = 4``, ``thr_b = 5``).  We follow the same
convention: ids are plain ``int`` wrapped in ``NewType`` aliases so the type
checker can tell a thread id from an LWP id, while the runtime cost stays
zero.  Synchronisation objects are identified by a ``(kind, name)`` pair so
that "mutex m" and "semaphore m" never collide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NewType

__all__ = [
    "ThreadId",
    "LwpId",
    "CpuId",
    "MAIN_THREAD_ID",
    "SyncObjectId",
    "thread_name",
]

ThreadId = NewType("ThreadId", int)
LwpId = NewType("LwpId", int)
CpuId = NewType("CpuId", int)

#: Solaris gives the initial (main) thread id 1.
MAIN_THREAD_ID = ThreadId(1)


def thread_name(tid: int) -> str:
    """Render a thread id the way the paper does (``T1``, ``T4`` ...)."""
    return f"T{int(tid)}"


@dataclass(frozen=True, slots=True)
class SyncObjectId:
    """Identity of a synchronisation object.

    ``kind`` is one of ``mutex``, ``sema``, ``cond``, ``rwlock``; ``name``
    is the program-supplied label (in the real tool this is the object's
    address).  Frozen so it can key dictionaries and appear in recorded
    events.
    """

    kind: str
    name: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.kind}:{self.name}"
