"""The Simulator core: event engine, configuration, prediction."""

from repro.core.config import SimConfig, ThreadPolicy
from repro.core.predictor import (
    SpeedupPrediction,
    compile_trace,
    predict,
    predict_speedup,
    sweep_speedup,
)
from repro.core.result import (
    PlacedEvent,
    SegmentKind,
    SimulationResult,
    ThreadSegment,
    ThreadSummary,
)
from repro.core.simulator import ReplayPlan, Simulator, simulate_program
from repro.core.trace import Trace, TraceMeta, TraceStats

__all__ = [
    "SimConfig",
    "ThreadPolicy",
    "SpeedupPrediction",
    "compile_trace",
    "predict",
    "predict_speedup",
    "sweep_speedup",
    "PlacedEvent",
    "SegmentKind",
    "SimulationResult",
    "ThreadSegment",
    "ThreadSummary",
    "ReplayPlan",
    "Simulator",
    "simulate_program",
    "Trace",
    "TraceMeta",
    "TraceStats",
]
