"""Simulation configuration — the paper's user-supplied parameters.

Figure 1 feeds the Simulator two parameter blocks besides the recorded
information: the **hardware configuration** (e: number of processors,
communication delays) and the **scheduling policies** (f: number of LWPs,
thread priorities, binding of threads).  §3.2 enumerates the per-thread
manipulations: each thread can individually be unbound, bound to an LWP, or
bound to a certain CPU (which implies an LWP binding), and can be assigned
a priority that overrides every ``thr_setprio`` in the log.

:class:`SimConfig` carries all of that, validated eagerly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.core.errors import ConfigError
from repro.solaris.costs import CostModel
from repro.solaris.dispatch import DispatchTable

__all__ = ["ThreadPolicy", "SimConfig"]


@dataclass(frozen=True)
class ThreadPolicy:
    """Per-thread scheduling manipulation (§3.2).

    ``bound=True`` gives the thread its own LWP (creation ×6.7, sync ×5.9).
    ``cpu`` pins the thread to a processor and implies ``bound``.
    ``priority`` overrides the thread's priority for the whole run; its
    ``thr_setprio`` events in the log are then ignored.
    ``rt_priority`` puts the thread's LWP in the Solaris real-time (RT)
    scheduling class at that fixed priority: RT LWPs run above every
    time-sharing LWP, are never aged by the dispatcher, and round-robin
    among equals on a fixed quantum.  An RT thread needs a dedicated LWP
    (``priocntl`` operates on LWPs), so it implies ``bound``.
    """

    bound: Optional[bool] = None
    cpu: Optional[int] = None
    priority: Optional[int] = None
    rt_priority: Optional[int] = None

    def effective_bound(self) -> Optional[bool]:
        if self.cpu is not None or self.rt_priority is not None:
            return True
        return self.bound


@dataclass(frozen=True)
class SimConfig:
    """Full parameter set for one simulated multiprocessor execution.

    Attributes
    ----------
    cpus:
        Number of processors in the simulated machine.
    lwps:
        Size of the unbound-LWP pool.  ``None`` lets the pool grow on
        demand (one LWP per runnable unbound thread — the behaviour of a
        generous ``thr_setconcurrency``).  When set, every
        ``thr_setconcurrency`` in the log "has no effect" (§3.2).
    comm_delay_us:
        Inter-CPU communication delay: "affects how fast an event on one
        CPU is propagated to another CPU" — a wake-up crossing CPUs is
        delivered this much later.
    thread_policies:
        Per-thread-id overrides (binding, CPU pinning, priority).
    costs:
        The synchronisation cost model (paper multipliers inside).
    dispatch:
        The TS dispatch table governing LWP quanta and priority aging.
    time_slicing:
        Disable to let LWPs run to block (FIFO kernel scheduling); on by
        default, as in Solaris.
    rt_quantum_us:
        Round-robin time slice for real-time-class LWPs (the RT
        dispatch table's ``rt_quantum``; 100 ms default, matching the
        stock table's mid-range).
    scheduler:
        Which kernel dispatch policy the simulated machine runs — a
        registered :mod:`repro.sched` backend name.  ``"solaris"``
        (default) is the paper's two-level model; ``"clutch"`` and
        ``"cfs"`` replay the same trace under XNU-Clutch-style and
        Linux-CFS-style kernels for cross-OS what-if studies.
    """

    cpus: int = 1
    lwps: Optional[int] = None
    comm_delay_us: int = 0
    thread_policies: Dict[int, ThreadPolicy] = field(default_factory=dict)
    costs: CostModel = field(default_factory=CostModel)
    dispatch: DispatchTable = field(default_factory=DispatchTable.classic)
    time_slicing: bool = True
    rt_quantum_us: int = 100_000
    scheduler: str = "solaris"

    def __post_init__(self) -> None:
        if self.cpus < 1:
            raise ConfigError(f"cpus must be >= 1, got {self.cpus}")
        if self.lwps is not None and self.lwps < 1:
            raise ConfigError(f"lwps must be >= 1 or None, got {self.lwps}")
        if self.comm_delay_us < 0:
            raise ConfigError(f"comm_delay_us must be >= 0, got {self.comm_delay_us}")
        if self.rt_quantum_us < 1:
            raise ConfigError(f"rt_quantum_us must be >= 1, got {self.rt_quantum_us}")
        from repro.sched import available_backends  # lazy: avoids cycle

        if self.scheduler not in available_backends():
            raise ConfigError(
                f"unknown scheduler {self.scheduler!r}; known: "
                + ", ".join(available_backends())
            )
        for tid, pol in self.thread_policies.items():
            if pol.cpu is not None and not (0 <= pol.cpu < self.cpus):
                raise ConfigError(
                    f"thread {tid} bound to CPU {pol.cpu}, but machine has "
                    f"{self.cpus} CPUs"
                )
            if pol.rt_priority is not None and not (0 <= pol.rt_priority <= 59):
                raise ConfigError(
                    f"thread {tid} RT priority {pol.rt_priority} outside 0..59"
                )

    # ------------------------------------------------------------------

    def policy_for(self, tid: int) -> ThreadPolicy:
        return self.thread_policies.get(tid, ThreadPolicy())

    def with_cpus(self, cpus: int) -> "SimConfig":
        """Copy with a different processor count (speed-up sweeps)."""
        return replace(self, cpus=cpus)

    def with_policy(self, tid: int, policy: ThreadPolicy) -> "SimConfig":
        policies = dict(self.thread_policies)
        policies[tid] = policy
        return replace(self, thread_policies=policies)

    def with_costs(self, costs: CostModel) -> "SimConfig":
        """Copy with a different cost model.

        This is how a fitted :class:`~repro.calib.profile.CalibrationProfile`
        enters a simulation: predictions then run under the profile's
        measured parameters instead of the baked-in §3.2 constants.
        """
        return replace(self, costs=costs)

    def with_scheduler(self, scheduler: str) -> "SimConfig":
        """Copy with a different kernel scheduler backend (cross-OS
        what-if: predict the same trace under another kernel)."""
        return replace(self, scheduler=scheduler)

    def describe(self) -> str:
        """One-line human summary for reports."""
        lwps = "on-demand" if self.lwps is None else str(self.lwps)
        parts = [f"{self.cpus} CPU(s)", f"LWPs={lwps}"]
        if self.comm_delay_us:
            parts.append(f"comm-delay={self.comm_delay_us}us")
        if self.thread_policies:
            parts.append(f"{len(self.thread_policies)} thread override(s)")
        if not self.time_slicing:
            parts.append("no-timeslice")
        if self.scheduler != "solaris":
            parts.append(f"sched={self.scheduler}")
        return ", ".join(parts)
