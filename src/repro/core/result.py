"""Simulation output — "information describing the predicted execution" (g).

The Simulator's product is everything the Visualizer needs (§3.3):

* per-thread **state segments** (running on which CPU / runnable-but-no-
  processor / blocked / sleeping) — the lines of the execution flow graph
  and the green/red bands of the parallelism graph;
* **placed events** — every simulated thread-library call with its start,
  end, CPU, object and source location — the symbols of the flow graph and
  the content of the event popup;
* **thread summaries** — start/end/work/total times per thread (popup); and
* machine-level accounting (makespan, per-CPU busy time).
"""

from __future__ import annotations

import enum
import operator
from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.core.config import SimConfig
from repro.core.events import Primitive, SourceLocation, Status
from repro.core.ids import SyncObjectId, ThreadId

__all__ = [
    "SegmentKind",
    "ThreadSegment",
    "PlacedEvent",
    "ThreadSummary",
    "RunStatus",
    "Incompleteness",
    "SimulationResult",
    "ResultBuilder",
]


class RunStatus(enum.Enum):
    """How a simulated execution ended.

    COMPLETE — every thread exited; the result is the full predicted
    execution.  Anything else marks a *partial* result: the simulation
    stopped early and the segments/events cover only the simulated time
    reached.  DEADLOCK — no runnable thread existed but threads were
    still blocked; LIVELOCK — simulated time stopped advancing;
    BUDGET — a watchdog budget (wall clock or event count) ran out;
    DIVERGED — a replayed event could not be applied to the simulated
    state (trace and synchronisation model disagree).
    """

    COMPLETE = "complete"
    DEADLOCK = "deadlock"
    LIVELOCK = "livelock"
    BUDGET = "budget-exhausted"
    DIVERGED = "diverged"


@dataclass(frozen=True)
class Incompleteness:
    """Why a run is partial, with everything needed to act on it.

    ``blocked`` lists every thread still alive when the run stopped;
    ``cycle`` is the blocking cycle (each thread waiting on a resource
    held by the next, wrapping around) when one was found — the classic
    deadlock witness.  For DIVERGED runs, ``divergence_tid`` /
    ``divergence_us`` pin the first event that could not be applied.
    """

    status: RunStatus
    reason: str
    blocked: Tuple[int, ...] = ()
    cycle: Tuple[int, ...] = ()
    divergence_tid: Optional[int] = None
    divergence_us: Optional[int] = None

    def describe(self) -> str:
        parts = [f"{self.status.value}: {self.reason}"]
        if self.cycle:
            ring = " -> ".join(f"T{t}" for t in self.cycle)
            parts.append(f"blocking cycle: {ring} -> T{self.cycle[0]}")
        elif self.blocked:
            parts.append(
                "blocked threads: " + ", ".join(f"T{t}" for t in self.blocked)
            )
        if self.divergence_tid is not None:
            at = (
                f" at {self.divergence_us}us"
                if self.divergence_us is not None
                else ""
            )
            parts.append(f"diverged in T{self.divergence_tid}{at}")
        return "; ".join(parts)


class SegmentKind(enum.Enum):
    """Displayable thread condition over an interval (§3.3 flow graph).

    RUNNING — solid line (and counted green in the parallelism graph);
    RUNNABLE — grey line, "ready to run but does not have any LWP or CPU
    to run on" (counted red); BLOCKED / SLEEPING — no line.
    """

    RUNNING = "running"
    RUNNABLE = "runnable"
    BLOCKED = "blocked"
    SLEEPING = "sleeping"


@dataclass(frozen=True, slots=True)
class ThreadSegment:
    """One interval of a thread's life in a fixed condition."""

    tid: ThreadId
    kind: SegmentKind
    start_us: int
    end_us: int
    cpu: Optional[int] = None  # set only for RUNNING segments

    def __post_init__(self) -> None:
        if self.end_us < self.start_us:
            raise ValueError(f"segment ends before it starts: {self}")

    @property
    def duration_us(self) -> int:
        return self.end_us - self.start_us


class PlacedEvent(NamedTuple):
    """A simulated thread-library call, positioned in simulated time.

    ``start_us`` is when the call began executing, ``end_us`` when it
    completed (for a blocking call this includes the blocked time — the
    popup reports "when the event started, ended, and how long it took to
    perform").  ``cpu`` is the processor the thread was running on when it
    made the call.

    A NamedTuple rather than a dataclass: one instance is built per
    simulated library call, so construction cost is on the replay hot
    path for both engines.
    """

    index: int
    tid: ThreadId
    primitive: Primitive
    start_us: int
    end_us: int
    cpu: Optional[int] = None
    obj: Optional[SyncObjectId] = None
    target: Optional[ThreadId] = None
    status: Optional[Status] = None
    source: Optional[SourceLocation] = None

    @property
    def duration_us(self) -> int:
        return self.end_us - self.start_us


@dataclass(frozen=True, slots=True)
class ThreadSummary:
    """Per-thread numbers shown in the Visualizer's popup (§3.3)."""

    tid: ThreadId
    func_name: str
    created_at_us: int
    start_us: Optional[int]
    end_us: Optional[int]
    work_us: int  # time the thread actually was working (on CPU)

    @property
    def total_us(self) -> Optional[int]:
        """Total execution time including blocked/runnable time."""
        if self.start_us is None or self.end_us is None:
            return None
        return self.end_us - self.start_us


@dataclass
class SimulationResult:
    """Everything produced by one simulated execution.

    ``incompleteness`` is None for a run that finished; a partial run
    (watchdog stop, deadlock, divergence — see :class:`RunStatus`)
    carries its diagnosis here and every collection covers only the
    simulated time actually reached.
    """

    config: SimConfig
    makespan_us: int
    segments: Dict[ThreadId, List[ThreadSegment]]
    events: List[PlacedEvent]
    summaries: Dict[ThreadId, ThreadSummary]
    cpu_busy_us: List[int]
    engine_events: int = 0
    incompleteness: Optional[Incompleteness] = None

    # ------------------------------------------------------------------

    @property
    def status(self) -> RunStatus:
        if self.incompleteness is None:
            return RunStatus.COMPLETE
        return self.incompleteness.status

    @property
    def incomplete(self) -> bool:
        return self.incompleteness is not None

    def thread_ids(self) -> List[ThreadId]:
        return list(self.segments)

    def events_for(self, tid: ThreadId) -> List[PlacedEvent]:
        return [ev for ev in self.events if ev.tid == tid]

    def total_cpu_time_us(self) -> int:
        return sum(self.cpu_busy_us)

    def utilisation(self) -> float:
        """Mean fraction of the machine kept busy over the makespan."""
        if self.makespan_us == 0:
            return 0.0
        return self.total_cpu_time_us() / (self.makespan_us * self.config.cpus)

    def speedup_vs(self, uniprocessor_us: int) -> float:
        """Speed-up relative to a uni-processor duration."""
        if self.makespan_us == 0:
            raise ZeroDivisionError("zero makespan")
        return uniprocessor_us / self.makespan_us


class ResultBuilder:
    """Accumulates scheduler/simulator notifications into a result.

    The scheduler reports raw state *transitions*; the builder closes the
    previous open segment for the thread and opens the next, so segment
    lists are guaranteed contiguous and non-overlapping per thread.
    """

    def __init__(self, config: SimConfig):
        self.config = config
        self._segments: Dict[ThreadId, List[ThreadSegment]] = {}
        self._open: Dict[ThreadId, Tuple[SegmentKind, int, Optional[int]]] = {}
        #: event rows (PlacedEvent fields minus the leading index), kept as
        #: plain tuples until build() — constructing the NamedTuple once,
        #: with the final timeline index, halves per-event build cost
        self._events: List[tuple] = []
        self._cpu_busy: List[int] = [0] * config.cpus

    # -- notifications from the scheduler/simulator ----------------------

    def thread_condition(
        self,
        tid: ThreadId,
        kind: Optional[SegmentKind],
        time_us: int,
        cpu: Optional[int] = None,
    ) -> None:
        """Thread *tid* enters *kind* at *time_us* (None = disappears)."""
        open_seg = self._open.pop(tid, None)
        if open_seg is not None:
            prev_kind, start_us, prev_cpu = open_seg
            if time_us > start_us:
                # the key exists: it was created when the segment opened
                self._segments[tid].append(
                    ThreadSegment(tid, prev_kind, start_us, time_us, prev_cpu)
                )
            if prev_kind is SegmentKind.RUNNING and prev_cpu is not None:
                self._cpu_busy[prev_cpu] += time_us - start_us
        if kind is not None:
            self._open[tid] = (kind, time_us, cpu)
            if tid not in self._segments:
                self._segments[tid] = []

    def event_placed(
        self,
        *,
        tid: ThreadId,
        primitive: Primitive,
        start_us: int,
        end_us: int,
        cpu: Optional[int],
        obj: Optional[SyncObjectId] = None,
        target: Optional[ThreadId] = None,
        status: Optional[Status] = None,
        source: Optional[SourceLocation] = None,
    ) -> None:
        self._events.append(
            (tid, primitive, start_us, end_us, cpu, obj, target, status, source)
        )

    # -- finalisation ------------------------------------------------------

    def build(
        self,
        *,
        makespan_us: int,
        summaries: Dict[ThreadId, ThreadSummary],
        engine_events: int = 0,
        incompleteness: Optional[Incompleteness] = None,
    ) -> SimulationResult:
        # Close any segment still open at the end of the run.
        for tid in list(self._open):
            self.thread_condition(tid, None, makespan_us)
        # timeline order = (start_us, append order); rows are appended in
        # order, so a stable sort on start_us (row field 2) is equivalent
        rows = self._events
        rows.sort(key=operator.itemgetter(2))
        events = [PlacedEvent(i, *row) for i, row in enumerate(rows)]
        return SimulationResult(
            config=self.config,
            makespan_us=makespan_us,
            segments=self._segments,
            events=events,
            summaries=summaries,
            cpu_busy_us=self._cpu_busy,
            engine_events=engine_events,
            incompleteness=incompleteness,
        )
