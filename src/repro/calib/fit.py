"""Derivative-free fitting of the cost model, with cross-validation.

The objective (mean |§4 error| over the suite) is a black box: each
evaluation is a batch of simulations, it is piecewise-constant in the
integral parameters, and no gradients exist.  The fitter therefore
composes two classic derivative-free methods, both pure Python:

* **coordinate descent** with per-parameter shrinking steps — robust,
  embarrassingly cache-friendly (each probe moves one coordinate, so
  refits re-visit mostly known vectors), and good at exploiting the
  near-separable structure of the cost knobs;
* a **Nelder-Mead simplex restart** around the coordinate-descent
  incumbent, to pick up the remaining cross-parameter interaction.

Everything is deterministic: same suite + same budget → same fit.  All
evaluations are memoised on the rounded vector, and the job engine's
content-addressed cache deduplicates the underlying simulations anyway,
so the wall-clock cost of a fit is roughly (distinct vectors visited) ×
(suite replay cost).

:func:`cross_validate` answers the over-fitting question the paper's
Table 1 raises implicitly (five workloads, five fitted machines): fit
on k−1 folds of workloads, score on the held-out fold, report the
spread between train and holdout error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.errors import CalibrationError
from repro.calib.objective import ObjectiveEvaluator, mean_abs_error
from repro.calib.space import ParamSpace

__all__ = ["FitResult", "FoldResult", "CrossValidation", "fit", "cross_validate"]

#: Default evaluation budget for one fit.
DEFAULT_MAX_EVALS = 80


class _Memo:
    """Memoised objective with an evaluation budget and a trace.

    Vectors are keyed rounded to 9 significant-ish decimals so the
    float-noise neighbours Nelder-Mead generates collapse onto one
    evaluation.  The trace records ``(evaluation #, best-so-far)`` each
    time the incumbent improves — the convergence curve the profile
    stores.
    """

    def __init__(
        self, fn: Callable[[Sequence[float]], float], max_evals: int
    ) -> None:
        self.fn = fn
        self.max_evals = max_evals
        self.cache: Dict[Tuple[float, ...], float] = {}
        self.evals = 0
        self.best: Optional[Tuple[float, ...]] = None
        self.best_value = float("inf")
        self.trace: List[Tuple[int, float]] = []

    def exhausted(self) -> bool:
        return self.evals >= self.max_evals

    def __call__(self, vector: Sequence[float]) -> float:
        key = tuple(round(v, 9) for v in vector)
        if key in self.cache:
            return self.cache[key]
        if self.exhausted():
            # over budget: report the worst value seen so far so the
            # optimiser steers back without spending a real evaluation
            return float("inf")
        self.evals += 1
        value = self.fn(list(key))
        self.cache[key] = value
        if value < self.best_value:
            self.best_value = value
            self.best = key
            self.trace.append((self.evals, value))
        return value


def _coordinate_descent(
    memo: _Memo,
    space: ParamSpace,
    start: List[float],
    *,
    shrink: float = 0.5,
    min_rel_step: float = 0.01,
) -> List[float]:
    """Cyclic coordinate descent with per-axis shrinking steps."""
    x = space.clip(start)
    steps = space.steps()
    floors = [(p.hi - p.lo) * min_rel_step for p in space.params]
    best = memo(x)
    while not memo.exhausted() and any(s > f for s, f in zip(steps, floors)):
        improved = False
        for i in range(len(x)):
            if steps[i] <= floors[i]:
                continue
            for direction in (+1.0, -1.0):
                if memo.exhausted():
                    break
                candidate = list(x)
                candidate[i] += direction * steps[i]
                candidate = space.clip(candidate)
                if candidate == x:
                    continue
                value = memo(candidate)
                if value < best:
                    x, best = candidate, value
                    improved = True
                    break
        if not improved:
            steps = [s * shrink for s in steps]
    return list(memo.best) if memo.best is not None else x


def _nelder_mead(
    memo: _Memo,
    space: ParamSpace,
    start: List[float],
    *,
    spread: float = 0.05,
    max_iter: int = 200,
    tol: float = 1e-6,
) -> List[float]:
    """Textbook Nelder-Mead in the clipped box, restarted at *start*."""
    n = len(space)
    x0 = space.clip(start)
    simplex = [x0]
    for i in range(n):
        p = space.params[i]
        vertex = list(x0)
        delta = (p.hi - p.lo) * spread
        # step toward whichever bound has room
        vertex[i] += delta if vertex[i] + delta <= p.hi else -delta
        simplex.append(space.clip(vertex))
    values = [memo(v) for v in simplex]

    for _ in range(max_iter):
        if memo.exhausted():
            break
        order = sorted(range(n + 1), key=lambda i: values[i])
        simplex = [simplex[i] for i in order]
        values = [values[i] for i in order]
        if values[-1] - values[0] < tol:
            break
        centroid = [
            sum(simplex[i][d] for i in range(n)) / n for d in range(n)
        ]

        def at(coef: float) -> List[float]:
            return space.clip(
                [c + coef * (c - w) for c, w in zip(centroid, simplex[-1])]
            )

        reflected = at(1.0)
        fr = memo(reflected)
        if values[0] <= fr < values[-2]:
            simplex[-1], values[-1] = reflected, fr
        elif fr < values[0]:
            expanded = at(2.0)
            fe = memo(expanded)
            if fe < fr:
                simplex[-1], values[-1] = expanded, fe
            else:
                simplex[-1], values[-1] = reflected, fr
        else:
            contracted = at(-0.5)
            fc = memo(contracted)
            if fc < values[-1]:
                simplex[-1], values[-1] = contracted, fc
            else:  # total shrink toward the best vertex
                for i in range(1, n + 1):
                    simplex[i] = space.clip(
                        [
                            b + 0.5 * (v - b)
                            for b, v in zip(simplex[0], simplex[i])
                        ]
                    )
                    values[i] = memo(simplex[i])
    return list(memo.best) if memo.best is not None else x0


@dataclass(frozen=True)
class FitResult:
    """One fit: the incumbent parameters and how we got there."""

    params: Dict[str, float]
    objective: float
    baseline_objective: float
    evaluations: int
    objective_trace: Tuple[Tuple[int, float], ...]

    @property
    def improved(self) -> bool:
        """Strictly better than the defaults it started from."""
        return self.objective < self.baseline_objective

    @property
    def improvement(self) -> float:
        """Relative reduction of mean |error| vs the defaults."""
        if self.baseline_objective == 0:
            return 0.0
        return 1.0 - self.objective / self.baseline_objective


def fit(
    evaluator: ObjectiveEvaluator,
    *,
    max_evals: int = DEFAULT_MAX_EVALS,
    start: Optional[Dict[str, float]] = None,
) -> FitResult:
    """Fit the evaluator's parameter space within an evaluation budget.

    Roughly 60 % of the budget goes to coordinate descent, the rest to
    the Nelder-Mead restart.  The default parameters are always
    evaluated first, so ``objective <= baseline_objective`` holds by
    construction (the incumbent never regresses below the start point).
    """
    if max_evals < len(evaluator.space) + 2:
        raise CalibrationError(
            f"max_evals={max_evals} cannot even evaluate the defaults and "
            f"one probe per parameter ({len(evaluator.space)} params)"
        )
    space = evaluator.space
    memo = _Memo(evaluator.vector_fn(), max_evals)

    defaults = space.defaults()
    baseline = memo(defaults)
    x0 = space.to_vector(start) if start else defaults

    cd_budget = max(len(space) + 1, int(max_evals * 0.6))
    memo.max_evals = min(max_evals, memo.evals + cd_budget)
    incumbent = _coordinate_descent(memo, space, x0)
    memo.max_evals = max_evals
    incumbent = _nelder_mead(memo, space, incumbent)

    best_vec = list(memo.best) if memo.best is not None else incumbent
    return FitResult(
        params=space.to_dict(best_vec),
        objective=memo.best_value,
        baseline_objective=baseline,
        evaluations=memo.evals,
        objective_trace=tuple(memo.trace),
    )


@dataclass(frozen=True)
class FoldResult:
    """One CV fold: fitted on everything except ``held_out``."""

    held_out: Tuple[str, ...]
    train_objective: float
    holdout_objective: float
    params: Dict[str, float]

    @property
    def generalisation_gap(self) -> float:
        return self.holdout_objective - self.train_objective


@dataclass(frozen=True)
class CrossValidation:
    """k-fold CV across workloads."""

    folds: Tuple[FoldResult, ...]

    @property
    def mean_holdout(self) -> float:
        return sum(f.holdout_objective for f in self.folds) / len(self.folds)

    @property
    def worst_holdout(self) -> float:
        return max(f.holdout_objective for f in self.folds)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "folds": [
                {
                    "held_out": list(f.held_out),
                    "train_objective": round(f.train_objective, 6),
                    "holdout_objective": round(f.holdout_objective, 6),
                    "params": {k: round(v, 6) for k, v in f.params.items()},
                }
                for f in self.folds
            ],
            "mean_holdout": round(self.mean_holdout, 6),
            "worst_holdout": round(self.worst_holdout, 6),
        }


def cross_validate(
    evaluator: ObjectiveEvaluator,
    *,
    folds: int = 0,
    max_evals: int = DEFAULT_MAX_EVALS,
    progress: Optional[Callable[[str], None]] = None,
) -> CrossValidation:
    """k-fold cross-validation across *workloads* (never across rows of
    one workload — that would leak its trace into both sides).

    ``folds=0`` means leave-one-out.  Needs at least two workloads;
    fewer has nothing to hold out.  Per-fold fits share the engine's
    result cache with each other and with the main fit, so the marginal
    cost of CV is far below ``folds ×`` the main fit.
    """
    names = [m.name for m in evaluator.measured]
    if len(names) < 2:
        raise CalibrationError(
            f"cross-validation needs >= 2 workloads, got {names}"
        )
    k = len(names) if folds == 0 else folds
    if not 2 <= k <= len(names):
        raise CalibrationError(
            f"folds must be in [2, {len(names)}], got {folds}"
        )
    # deterministic contiguous folds over the suite order
    buckets: List[List[str]] = [[] for _ in range(k)]
    for i, name in enumerate(names):
        buckets[i % k].append(name)

    results: List[FoldResult] = []
    for held_out in buckets:
        train = [n for n in names if n not in held_out]
        if progress:
            progress(f"cv fold: holding out {held_out}, fitting on {train}")
        fitted = fit(evaluator.restricted(train), max_evals=max_evals)
        holdout_rows = evaluator.restricted(held_out).error_table(fitted.params)
        results.append(
            FoldResult(
                held_out=tuple(held_out),
                train_objective=fitted.objective,
                holdout_objective=mean_abs_error(holdout_rows),
                params=fitted.params,
            )
        )
    return CrossValidation(folds=tuple(results))
