"""The versioned calibration artifact: a profile JSON on disk.

A :class:`CalibrationProfile` is the durable output of ``vppb
calibrate`` and the input to ``vppb validate`` and ``--profile`` on the
prediction commands.  It records everything needed to (a) reproduce the
fitted cost model (the parameter dict), (b) re-measure the exact suite
it was fitted against (the workload specs, seeds included), and (c)
audit the fit (per-cell error table, objective convergence trace,
cross-validation summary, machine fingerprint).

The machine fingerprint is *advisory*: the measured "machine" is itself
the seeded scheduler model, so profiles are portable across hosts; the
fingerprint only documents provenance and produces warnings, never
errors.  Structural problems (wrong format marker, unknown version,
parameters outside the tunable space's vocabulary) raise
:class:`~repro.core.errors.CalibrationError`.
"""

from __future__ import annotations

import json
import platform
from dataclasses import dataclass, field, replace
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.core.config import SimConfig
from repro.core.errors import CalibrationError
from repro.calib.fit import CrossValidation, FitResult
from repro.calib.measure import WorkloadSpec
from repro.calib.objective import ErrorRow
from repro.jobs.fingerprint import ENGINE_VERSION
from repro.solaris.costs import CostModel, apply_params

__all__ = ["PROFILE_FORMAT", "PROFILE_VERSION", "CalibrationProfile", "machine_fingerprint"]

PROFILE_FORMAT = "vppb-calibration-profile"
PROFILE_VERSION = 1


def machine_fingerprint() -> Dict[str, Any]:
    """Provenance of the fitting host (advisory — see module docstring)."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "engine_version": ENGINE_VERSION,
    }


@dataclass(frozen=True)
class CalibrationProfile:
    """Fitted cost-model parameters plus the evidence behind them."""

    params: Dict[str, float]
    objective: float
    baseline_objective: float
    error_table: Tuple[ErrorRow, ...]
    suite: Tuple[WorkloadSpec, ...]
    objective_trace: Tuple[Tuple[int, float], ...] = ()
    evaluations: int = 0
    cv: Optional[Dict[str, Any]] = None
    machine: Dict[str, Any] = field(default_factory=machine_fingerprint)
    created: str = ""
    version: int = PROFILE_VERSION

    def __post_init__(self) -> None:
        if not self.params:
            raise CalibrationError("profile has no fitted parameters")
        if not self.error_table:
            raise CalibrationError("profile has no recorded error table")
        if not self.suite:
            raise CalibrationError("profile records no workload suite")
        if not self.created:
            object.__setattr__(
                self,
                "created",
                datetime.now(timezone.utc).isoformat(timespec="seconds"),
            )

    # ------------------------------------------------------------------
    # applying the profile
    # ------------------------------------------------------------------

    def cost_model(self, *, base: Optional[CostModel] = None) -> CostModel:
        """The fitted cost model (raises on unknown parameter names)."""
        return apply_params(self.params, base=base)

    def apply(self, config: Optional[SimConfig] = None) -> SimConfig:
        """A config running under this profile's fitted costs."""
        base = config or SimConfig()
        return base.with_costs(self.cost_model(base=base.costs))

    @property
    def mean_abs_error(self) -> float:
        return sum(r.abs_error for r in self.error_table) / len(self.error_table)

    @property
    def worst_abs_error(self) -> float:
        return max(r.abs_error for r in self.error_table)

    def machine_mismatches(self) -> List[str]:
        """Differences between the fitting host and this one (warn-only)."""
        here = machine_fingerprint()
        return [
            f"{key}: profile has {self.machine.get(key)!r}, "
            f"this host has {here[key]!r}"
            for key in here
            if self.machine.get(key) != here[key]
        ]

    # ------------------------------------------------------------------
    # construction / (de)serialisation
    # ------------------------------------------------------------------

    @classmethod
    def from_fit(
        cls,
        fitted: FitResult,
        error_table: List[ErrorRow],
        suite: List[WorkloadSpec],
        *,
        cv: Optional[CrossValidation] = None,
    ) -> "CalibrationProfile":
        return cls(
            params=dict(fitted.params),
            objective=fitted.objective,
            baseline_objective=fitted.baseline_objective,
            error_table=tuple(error_table),
            suite=tuple(suite),
            objective_trace=tuple(fitted.objective_trace),
            evaluations=fitted.evaluations,
            cv=cv.to_dict() if cv is not None else None,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": PROFILE_FORMAT,
            "version": self.version,
            "created": self.created,
            "params": {k: round(v, 9) for k, v in sorted(self.params.items())},
            "objective": round(self.objective, 9),
            "baseline_objective": round(self.baseline_objective, 9),
            "evaluations": self.evaluations,
            "objective_trace": [
                [n, round(v, 9)] for n, v in self.objective_trace
            ],
            "error_table": [r.to_dict() for r in self.error_table],
            "suite": [s.to_dict() for s in self.suite],
            "cv": self.cv,
            "machine": self.machine,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CalibrationProfile":
        if not isinstance(data, dict):
            raise CalibrationError(
                f"profile document must be an object, got {type(data).__name__}"
            )
        if data.get("format") != PROFILE_FORMAT:
            raise CalibrationError(
                f"not a calibration profile (format={data.get('format')!r}, "
                f"expected {PROFILE_FORMAT!r})"
            )
        version = data.get("version")
        if version != PROFILE_VERSION:
            raise CalibrationError(
                f"unsupported profile version {version!r} "
                f"(this build reads version {PROFILE_VERSION})"
            )
        params = data.get("params")
        if not isinstance(params, dict):
            raise CalibrationError("profile 'params' must be an object")
        try:
            return cls(
                params={str(k): float(v) for k, v in params.items()},
                objective=float(data["objective"]),
                baseline_objective=float(data["baseline_objective"]),
                error_table=tuple(
                    ErrorRow.from_dict(r) for r in data.get("error_table", [])
                ),
                suite=tuple(
                    WorkloadSpec.from_dict(s) for s in data.get("suite", [])
                ),
                objective_trace=tuple(
                    (int(n), float(v))
                    for n, v in data.get("objective_trace", [])
                ),
                evaluations=int(data.get("evaluations", 0)),
                cv=data.get("cv"),
                machine=dict(data.get("machine", {})),
                created=str(data.get("created", "")),
                version=int(version),
            )
        except CalibrationError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise CalibrationError(f"malformed profile: {exc}") from exc

    @classmethod
    def from_json(cls, text: str) -> "CalibrationProfile":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise CalibrationError(f"profile is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json(), encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CalibrationProfile":
        path = Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise CalibrationError(f"cannot read profile {path}: {exc}") from exc
        try:
            return cls.from_json(text)
        except CalibrationError as exc:
            raise CalibrationError(f"{path}: {exc}") from exc

    def with_params(self, params: Dict[str, float]) -> "CalibrationProfile":
        return replace(self, params=dict(params))
