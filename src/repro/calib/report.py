"""Validation reporting: error tables, drift detection, exit codes.

``vppb validate`` answers two separate questions and encodes them in its
exit status:

* **budget** — does every (workload, cpus) cell's fresh |§4 error| stay
  within the error budget?  The default budget is the paper's worst
  Table 1 cell, Ocean at 8 CPUs: 6.2 %.  Any cell over budget →
  exit ``2``.
* **drift** — does the fresh error table still match the one the
  profile recorded when it was fitted?  The suite is re-measured from
  the profile's own specs (deterministic seeds), so any disagreement
  beyond a small tolerance means the profile no longer describes this
  build: the parameters were edited, the simulator changed, or the
  workloads did.  Drift with errors still in budget → exit ``1``.

Both clean → exit ``0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.calib.objective import (
    DEFAULT_ERROR_BUDGET,
    ErrorRow,
    mean_abs_error,
)
from repro.calib.profile import CalibrationProfile

__all__ = [
    "DEFAULT_ERROR_BUDGET",
    "DEFAULT_DRIFT_TOLERANCE",
    "DriftRow",
    "ValidationReport",
    "detect_drift",
    "build_report",
    "format_error_table",
    "format_validation",
]

#: Allowed |fresh − recorded| per cell before we call it drift.  The
#: re-measurement is deterministic, so this only absorbs float round-trip
#: noise (the profile rounds to 6 decimals), not behaviour changes.
DEFAULT_DRIFT_TOLERANCE = 1e-4

EXIT_OK = 0
EXIT_DRIFT = 1
EXIT_BUDGET = 2


@dataclass(frozen=True)
class DriftRow:
    """One cell where the fresh error table left the recorded one."""

    workload: str
    cpus: int
    recorded_error: Optional[float]
    fresh_error: Optional[float]

    @property
    def drift(self) -> float:
        if self.recorded_error is None or self.fresh_error is None:
            return float("inf")
        return abs(self.fresh_error - self.recorded_error)

    def describe(self) -> str:
        if self.recorded_error is None:
            return (
                f"{self.workload}@{self.cpus}cpu: cell not in recorded table "
                f"(fresh error {self.fresh_error:+.4%})"
            )
        if self.fresh_error is None:
            return (
                f"{self.workload}@{self.cpus}cpu: recorded cell "
                f"({self.recorded_error:+.4%}) missing from fresh table"
            )
        return (
            f"{self.workload}@{self.cpus}cpu: error moved "
            f"{self.recorded_error:+.4%} -> {self.fresh_error:+.4%} "
            f"(drift {self.drift:.4%})"
        )


def detect_drift(
    recorded: Sequence[ErrorRow],
    fresh: Sequence[ErrorRow],
    *,
    tolerance: float = DEFAULT_DRIFT_TOLERANCE,
) -> List[DriftRow]:
    """Cells where the fresh table disagrees with the recorded one."""
    rec = {(r.workload, r.cpus): r for r in recorded}
    new = {(r.workload, r.cpus): r for r in fresh}
    out: List[DriftRow] = []
    for key in sorted(set(rec) | set(new)):
        r, n = rec.get(key), new.get(key)
        row = DriftRow(
            workload=key[0],
            cpus=key[1],
            recorded_error=r.error if r else None,
            fresh_error=n.error if n else None,
        )
        if row.drift > tolerance:
            out.append(row)
    return out


@dataclass(frozen=True)
class ValidationReport:
    """Everything ``vppb validate`` concluded, ready to print or emit."""

    profile_path: str
    fresh_table: Tuple[ErrorRow, ...]
    recorded_table: Tuple[ErrorRow, ...]
    drift: Tuple[DriftRow, ...]
    budget: float
    drift_tolerance: float
    machine_warnings: Tuple[str, ...] = ()

    @property
    def over_budget(self) -> List[ErrorRow]:
        return [r for r in self.fresh_table if r.abs_error > self.budget]

    @property
    def mean_abs_error(self) -> float:
        return mean_abs_error(self.fresh_table)

    @property
    def worst(self) -> ErrorRow:
        return max(self.fresh_table, key=lambda r: r.abs_error)

    @property
    def exit_code(self) -> int:
        if self.over_budget:
            return EXIT_BUDGET
        if self.drift:
            return EXIT_DRIFT
        return EXIT_OK

    @property
    def verdict(self) -> str:
        return {
            EXIT_OK: "ok",
            EXIT_DRIFT: "drift",
            EXIT_BUDGET: "over-budget",
        }[self.exit_code]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "profile": self.profile_path,
            "verdict": self.verdict,
            "exit_code": self.exit_code,
            "budget": self.budget,
            "drift_tolerance": self.drift_tolerance,
            "mean_abs_error": round(self.mean_abs_error, 6),
            "worst": self.worst.to_dict(),
            "error_table": [r.to_dict() for r in self.fresh_table],
            "over_budget": [r.to_dict() for r in self.over_budget],
            "drift": [d.describe() for d in self.drift],
            "machine_warnings": list(self.machine_warnings),
        }


def build_report(
    profile: CalibrationProfile,
    profile_path: str,
    fresh_table: Sequence[ErrorRow],
    *,
    budget: float = DEFAULT_ERROR_BUDGET,
    drift_tolerance: float = DEFAULT_DRIFT_TOLERANCE,
) -> ValidationReport:
    return ValidationReport(
        profile_path=profile_path,
        fresh_table=tuple(fresh_table),
        recorded_table=tuple(profile.error_table),
        drift=tuple(
            detect_drift(
                profile.error_table, fresh_table, tolerance=drift_tolerance
            )
        ),
        budget=budget,
        drift_tolerance=drift_tolerance,
        machine_warnings=tuple(profile.machine_mismatches()),
    )


def format_error_table(
    rows: Sequence[ErrorRow], *, budget: Optional[float] = None
) -> str:
    """The Table 1 presentation: real vs predicted speed-up and §4 error."""
    lines = [
        f"{'workload':<12} {'cpus':>4} {'real':>8} {'predicted':>10} "
        f"{'error':>9}"
    ]
    for r in rows:
        flag = ""
        if budget is not None and r.abs_error > budget:
            flag = "  << over budget"
        lines.append(
            f"{r.workload:<12} {r.cpus:>4} {r.real_speedup:>8.3f} "
            f"{r.predicted_speedup:>10.3f} {r.error:>+9.2%}{flag}"
        )
    lines.append(
        f"mean |error| {mean_abs_error(rows):.2%}, "
        f"worst {max(r.abs_error for r in rows):.2%}"
    )
    return "\n".join(lines)


def format_validation(report: ValidationReport) -> str:
    lines = [
        f"profile: {report.profile_path}",
        format_error_table(report.fresh_table, budget=report.budget),
        f"error budget: {report.budget:.2%} per cell",
    ]
    if report.over_budget:
        lines.append(
            f"OVER BUDGET: {len(report.over_budget)} cell(s) exceed "
            f"{report.budget:.2%}"
        )
    if report.drift:
        lines.append(
            f"DRIFT: fresh error table disagrees with the profile's "
            f"recorded table in {len(report.drift)} cell(s):"
        )
        lines.extend(f"  {d.describe()}" for d in report.drift)
    for warning in report.machine_warnings:
        lines.append(f"note: fitted on a different host ({warning})")
    lines.append(f"verdict: {report.verdict} (exit {report.exit_code})")
    return "\n".join(lines)
