"""Calibration & validation of the cost model against measured runs.

The paper fixes its §3.2 cost parameters by microbenchmarking the
target machine (×6.7 bound-thread creation, ×5.9 bound synchronisation)
and then *validates* the whole pipeline by comparing predicted against
measured speed-ups (Table 1, worst cell 6.2 %).  This package closes
that loop for the reproduction:

* :mod:`repro.calib.measure` runs the paired experiments — one
  monitored uni-processor trace plus Table 1 "Real" ground truth per
  workload, all seeded and exactly reproducible;
* :mod:`repro.calib.space` / :mod:`repro.calib.objective` /
  :mod:`repro.calib.fit` fit the tunable cost parameters by minimising
  mean |§4 error| with derivative-free search, every simulation routed
  through the content-addressed :class:`~repro.jobs.engine.JobEngine`;
* :mod:`repro.calib.profile` persists the result as a versioned JSON
  artifact that :class:`~repro.core.config.SimConfig` can load;
* :mod:`repro.calib.report` re-measures a profile's own suite and turns
  budget violations and drift into CI-friendly exit codes.

:func:`calibrate` and :func:`validate` are the two entry points the CLI
wraps; everything below them is library surface for tests and notebooks.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.core.config import SimConfig
from repro.calib.fit import (
    DEFAULT_MAX_EVALS,
    CrossValidation,
    FitResult,
    FoldResult,
    cross_validate,
    fit,
)
from repro.calib.measure import (
    MeasuredWorkload,
    Measurement,
    WorkloadSpec,
    default_suite,
    measure_suite,
)
from repro.calib.objective import ErrorRow, ObjectiveEvaluator, mean_abs_error
from repro.calib.profile import (
    PROFILE_FORMAT,
    PROFILE_VERSION,
    CalibrationProfile,
    machine_fingerprint,
)
from repro.calib.report import (
    DEFAULT_DRIFT_TOLERANCE,
    DEFAULT_ERROR_BUDGET,
    DriftRow,
    ValidationReport,
    build_report,
    detect_drift,
    format_error_table,
    format_validation,
)
from repro.calib.space import ParamSpace, default_space
from repro.jobs.engine import JobEngine

__all__ = [
    "CalibrationProfile",
    "CrossValidation",
    "DriftRow",
    "ErrorRow",
    "FitResult",
    "FoldResult",
    "MeasuredWorkload",
    "Measurement",
    "ObjectiveEvaluator",
    "ParamSpace",
    "ValidationReport",
    "WorkloadSpec",
    "DEFAULT_DRIFT_TOLERANCE",
    "DEFAULT_ERROR_BUDGET",
    "DEFAULT_MAX_EVALS",
    "PROFILE_FORMAT",
    "PROFILE_VERSION",
    "build_report",
    "calibrate",
    "cross_validate",
    "default_space",
    "default_suite",
    "detect_drift",
    "fit",
    "format_error_table",
    "format_validation",
    "machine_fingerprint",
    "mean_abs_error",
    "measure_suite",
    "validate",
]


def calibrate(
    specs: Optional[Sequence[WorkloadSpec]] = None,
    *,
    base_config: Optional[SimConfig] = None,
    engine: Optional[JobEngine] = None,
    max_evals: int = DEFAULT_MAX_EVALS,
    cv_folds: Optional[int] = 0,
    progress: Optional[Callable[[str], None]] = None,
) -> CalibrationProfile:
    """Measure the suite, fit the cost model, return the profile.

    ``cv_folds``: ``0`` = leave-one-out over workloads (the default),
    ``k >= 2`` = k-fold, ``None`` = skip cross-validation.  The CV fits
    share the engine's result cache with the main fit, so enabling CV
    costs far less than ``folds`` extra fits.
    """
    suite = list(specs) if specs is not None else default_suite()
    measured = measure_suite(suite, base_config=base_config, progress=progress)
    evaluator = ObjectiveEvaluator(
        measured, base_config=base_config, engine=engine
    )
    if progress:
        progress(
            f"fitting {len(evaluator.space)} parameters over "
            f"{sum(len(m.measurements) for m in measured)} cells "
            f"(budget {max_evals} evaluations)"
        )
    fitted = fit(evaluator, max_evals=max_evals)
    cv = None
    if cv_folds is not None and len(measured) >= 2:
        cv = cross_validate(
            evaluator,
            folds=cv_folds,
            max_evals=max_evals,
            progress=progress,
        )
    if progress:
        progress(
            f"fit done: mean |error| {fitted.baseline_objective:.2%} -> "
            f"{fitted.objective:.2%} in {fitted.evaluations} evaluations"
        )
    return CalibrationProfile.from_fit(
        fitted, evaluator.error_table(fitted.params), suite, cv=cv
    )


def validate(
    profile: CalibrationProfile,
    *,
    profile_path: str = "<profile>",
    base_config: Optional[SimConfig] = None,
    engine: Optional[JobEngine] = None,
    budget: float = DEFAULT_ERROR_BUDGET,
    drift_tolerance: float = DEFAULT_DRIFT_TOLERANCE,
    progress: Optional[Callable[[str], None]] = None,
) -> ValidationReport:
    """Re-measure a profile's own suite and score it fresh.

    The suite specs inside the profile are fully seeded, so the fresh
    error table is an exact function of (profile params, simulator
    build); any disagreement with the recorded table is real drift, not
    noise.
    """
    measured = measure_suite(
        list(profile.suite), base_config=base_config, progress=progress
    )
    evaluator = ObjectiveEvaluator(
        measured, base_config=base_config, engine=engine
    )
    fresh = evaluator.error_table(profile.params)
    return build_report(
        profile,
        profile_path,
        fresh,
        budget=budget,
        drift_tolerance=drift_tolerance,
    )
