"""Paired measured/predicted experiments over the workload suite.

One :class:`WorkloadSpec` names everything needed to reproduce one
calibration data point: the workload, its thread count and scale, the
program seed, the machine sizes to measure, and the ground-truth run
protocol (runs, jitter, perturbation seed, probe overhead).  Because the
"real machine" here is the seeded scheduler model of
:func:`repro.program.mpexec.measure_speedup`, a spec is *fully
deterministic* — the same spec measured on any host yields bit-identical
speed-ups and an identical trace fingerprint.  That is what lets a
committed :class:`~repro.calib.profile.CalibrationProfile` re-measure
its own suite in CI and compare against the error table it recorded.

:func:`measure_suite` produces, per spec:

* the monitored uni-processor trace (recorded once, with probe
  intrusion — the predictor's only input, exactly as in fig. 1), and
* the Table 1 "Real" column: median-of-*runs* speed-up per CPU count.

Measurement always runs under the *default* cost model: the measured
machine is fixed; calibration fits only the predictor's side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import SimConfig
from repro.core.errors import CalibrationError, MonitorabilityError
from repro.core.trace import Trace
from repro.jobs.model import TraceRef
from repro.program.mpexec import DEFAULT_JITTER, DEFAULT_RUNS, measure_speedup
from repro.program.uniexec import record_program
from repro.recorder.recorder import DEFAULT_PROBE_OVERHEAD_US
from repro.workloads import get_workload

__all__ = [
    "WorkloadSpec",
    "Measurement",
    "MeasuredWorkload",
    "default_suite",
    "measure_suite",
]

#: The CPU counts the paper's Table 1 reports.
DEFAULT_CPUS = (2, 4, 8)

#: Default program seed for calibration runs (any fixed value works; it
#: only has to be recorded so validation rebuilds the same programs).
DEFAULT_SEED = 1998


@dataclass(frozen=True)
class WorkloadSpec:
    """Everything needed to reproduce one workload's measurements."""

    name: str
    threads: int = 4
    scale: float = 0.05
    seed: int = DEFAULT_SEED
    cpus: Tuple[int, ...] = DEFAULT_CPUS
    runs: int = DEFAULT_RUNS
    jitter: float = DEFAULT_JITTER
    seed0: int = 1
    probe_overhead_us: int = DEFAULT_PROBE_OVERHEAD_US

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise CalibrationError(f"{self.name}: threads must be >= 1")
        if self.scale <= 0:
            raise CalibrationError(f"{self.name}: scale must be > 0")
        if not self.cpus:
            raise CalibrationError(f"{self.name}: no CPU counts to measure")
        if any(c < 1 for c in self.cpus):
            raise CalibrationError(f"{self.name}: CPU counts must be >= 1")
        if self.runs < 1:
            raise CalibrationError(f"{self.name}: runs must be >= 1")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "threads": self.threads,
            "scale": self.scale,
            "seed": self.seed,
            "cpus": list(self.cpus),
            "runs": self.runs,
            "jitter": self.jitter,
            "seed0": self.seed0,
            "probe_overhead_us": self.probe_overhead_us,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "WorkloadSpec":
        try:
            return cls(
                name=str(data["name"]),
                threads=int(data.get("threads", 4)),
                scale=float(data.get("scale", 0.05)),
                seed=int(data.get("seed", DEFAULT_SEED)),
                cpus=tuple(int(c) for c in data.get("cpus", DEFAULT_CPUS)),
                runs=int(data.get("runs", DEFAULT_RUNS)),
                jitter=float(data.get("jitter", DEFAULT_JITTER)),
                seed0=int(data.get("seed0", 1)),
                probe_overhead_us=int(
                    data.get("probe_overhead_us", DEFAULT_PROBE_OVERHEAD_US)
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CalibrationError(f"bad workload spec {data!r}: {exc}") from exc


@dataclass(frozen=True)
class Measurement:
    """Ground truth for one (workload, cpus) cell: the Table 1 "Real"
    median plus its min-max band."""

    cpus: int
    real_speedup: float
    real_min: float
    real_max: float


@dataclass(frozen=True)
class MeasuredWorkload:
    """One workload's calibration data: its monitored trace and the
    measured speed-ups the prediction must hit."""

    spec: WorkloadSpec
    trace: Trace
    monitored_us: int
    measurements: Tuple[Measurement, ...]
    trace_ref: TraceRef = field(compare=False, hash=False, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.trace_ref is None:
            object.__setattr__(self, "trace_ref", TraceRef.from_trace(self.trace))

    @property
    def name(self) -> str:
        return self.spec.name

    def real_speedup(self, cpus: int) -> float:
        for m in self.measurements:
            if m.cpus == cpus:
                return m.real_speedup
        raise CalibrationError(f"{self.name}: no measurement at {cpus} CPUs")


def default_suite() -> List[WorkloadSpec]:
    """The stock calibration suite: the seeded synthetic mix plus the
    producer/consumer case study, at miniature scale.

    Small on purpose — a fit evaluates the whole suite once per candidate
    parameter vector, so suite cost multiplies fit cost.  ``vppb
    calibrate --workload`` swaps in bigger kernels when wanted.
    """
    return [
        WorkloadSpec(name="synthetic", threads=4, scale=1.0),
        WorkloadSpec(name="prodcons", threads=4, scale=0.05),
    ]


def measure_one(
    spec: WorkloadSpec,
    *,
    base_config: Optional[SimConfig] = None,
) -> MeasuredWorkload:
    """Record the monitored trace and measure ground truth for one spec."""
    workload = get_workload(spec.name)
    base = base_config or SimConfig()

    program = workload.make_program(spec.threads, spec.scale, seed=spec.seed)
    try:
        recording = record_program(
            program, overhead_us=spec.probe_overhead_us, base_config=base
        )
    except MonitorabilityError as exc:
        raise CalibrationError(
            f"workload {spec.name!r} cannot join the calibration suite: {exc}"
        ) from exc

    measurements: List[Measurement] = []
    for cpus in spec.cpus:
        # fresh program per run protocol: measure_speedup executes it
        # live, and generators are consumed by execution
        truth = measure_speedup(
            workload.make_program(spec.threads, spec.scale, seed=spec.seed),
            cpus,
            base_config=base,
            runs=spec.runs,
            jitter=spec.jitter,
            seed0=spec.seed0,
        )
        measurements.append(
            Measurement(
                cpus=cpus,
                real_speedup=truth.speedup,
                real_min=truth.speedups.minimum,
                real_max=truth.speedups.maximum,
            )
        )

    return MeasuredWorkload(
        spec=spec,
        trace=recording.trace,
        monitored_us=recording.monitored_makespan_us,
        measurements=tuple(measurements),
    )


def measure_suite(
    specs: Sequence[WorkloadSpec],
    *,
    base_config: Optional[SimConfig] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[MeasuredWorkload]:
    """Measure every spec; the expensive, run-once half of calibration.

    Ground truth never depends on the fitted parameters, so one
    ``measure_suite`` result serves an entire fit *and* later validation
    runs against the same specs.
    """
    if not specs:
        raise CalibrationError("empty calibration suite")
    names = [s.name for s in specs]
    if len(set(names)) != len(names):
        raise CalibrationError(f"duplicate workloads in suite: {names}")
    out = []
    for spec in specs:
        if progress:
            progress(
                f"measuring {spec.name} (threads={spec.threads}, "
                f"scale={spec.scale}, cpus={list(spec.cpus)}, "
                f"{spec.runs} runs each)"
            )
        out.append(measure_one(spec, base_config=base_config))
    return out
