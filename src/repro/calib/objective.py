"""The calibration objective: mean |§4 prediction error| over the suite.

For a candidate parameter vector, every workload's monitored trace is
replayed under the candidate cost model — one uni-processor baseline
plus one N-CPU prediction per measured machine size — and each
prediction is scored with the paper's error ``(real − predicted) /
real``.  The scalar the fitter minimises is the mean absolute error
over all (workload, cpus) cells.

All replays for one vector go through
:meth:`repro.jobs.engine.JobEngine.makespan_matrix` as a single batch:
cells run concurrently when the engine has a pool, and because job
fingerprints cover the full config (costs included), every previously
visited vector — in this fit, a refit, or a validation run — is a pure
:class:`~repro.jobs.cache.ResultCache` read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.metrics import prediction_error
from repro.core.config import SimConfig
from repro.core.errors import CalibrationError
from repro.calib.measure import MeasuredWorkload
from repro.calib.space import ParamSpace, default_space
from repro.jobs.engine import JobEngine, default_engine
from repro.program.uniexec import uniprocessor_config
from repro.solaris.costs import apply_params

__all__ = [
    "DEFAULT_ERROR_BUDGET",
    "ErrorRow",
    "ObjectiveEvaluator",
    "mean_abs_error",
]

#: The paper's worst validated cell (Ocean, 8 CPUs): 6.2 % error.  Both
#: the validate gate and the fitter's hinge penalty default to it, so
#: the fit optimises exactly the quantity the gate later checks.
DEFAULT_ERROR_BUDGET = 0.062


@dataclass(frozen=True)
class ErrorRow:
    """One (workload, cpus) cell of the §4 error table."""

    workload: str
    cpus: int
    real_speedup: float
    predicted_speedup: float
    error: float

    @property
    def abs_error(self) -> float:
        return abs(self.error)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "cpus": self.cpus,
            "real_speedup": round(self.real_speedup, 6),
            "predicted_speedup": round(self.predicted_speedup, 6),
            "error": round(self.error, 6),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ErrorRow":
        try:
            return cls(
                workload=str(data["workload"]),
                cpus=int(data["cpus"]),
                real_speedup=float(data["real_speedup"]),
                predicted_speedup=float(data["predicted_speedup"]),
                error=float(data["error"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CalibrationError(f"bad error-table row {data!r}: {exc}") from exc


def mean_abs_error(rows: Sequence[ErrorRow]) -> float:
    if not rows:
        raise CalibrationError("empty error table")
    return sum(r.abs_error for r in rows) / len(rows)


class ObjectiveEvaluator:
    """Scores parameter dicts/vectors against a measured suite.

    The evaluator is cheap to construct — all the expensive state (the
    measured suite) is handed in — so cross-validation builds one
    restricted evaluator per fold via :meth:`restricted`.

    The scalar score is mean |error| plus a hinge penalty,
    ``budget_weight × Σ max(0, |error| − cell_budget)``, on every cell
    over *cell_budget*.  The validate gate is per-cell, so a fit that
    lowered the mean by sacrificing one cell past the budget would
    produce a profile that fails its own gate; the hinge makes such
    trades unprofitable while leaving the objective equal to plain mean
    |error| everywhere inside the budget.  ``cell_budget=None`` turns
    the penalty off.
    """

    def __init__(
        self,
        measured: Sequence[MeasuredWorkload],
        *,
        space: Optional[ParamSpace] = None,
        base_config: Optional[SimConfig] = None,
        engine: Optional[JobEngine] = None,
        use_cache: bool = True,
        cell_budget: Optional[float] = DEFAULT_ERROR_BUDGET,
        budget_weight: float = 10.0,
    ) -> None:
        if not measured:
            raise CalibrationError("no measured workloads to evaluate against")
        if cell_budget is not None and cell_budget <= 0:
            raise CalibrationError(
                f"cell_budget must be > 0 or None, got {cell_budget}"
            )
        self.measured = list(measured)
        self.space = space or default_space()
        self.base_config = base_config or SimConfig()
        self.engine = engine or default_engine()
        self.use_cache = use_cache
        self.cell_budget = cell_budget
        self.budget_weight = budget_weight
        self.evaluations = 0

    # ------------------------------------------------------------------

    def restricted(self, names: Sequence[str]) -> "ObjectiveEvaluator":
        """An evaluator over a subset of the suite (for CV folds)."""
        wanted = set(names)
        subset = [m for m in self.measured if m.name in wanted]
        missing = wanted - {m.name for m in subset}
        if missing:
            raise CalibrationError(f"unknown workload(s) {sorted(missing)}")
        return ObjectiveEvaluator(
            subset,
            space=self.space,
            base_config=self.base_config,
            engine=self.engine,
            use_cache=self.use_cache,
            cell_budget=self.cell_budget,
            budget_weight=self.budget_weight,
        )

    def _candidate_config(self, params: Mapping[str, float]) -> SimConfig:
        costs = apply_params(params, base=self.base_config.costs)
        return self.base_config.with_costs(costs)

    def error_table(self, params: Mapping[str, float]) -> List[ErrorRow]:
        """The §4 error table for one parameter dict, suite-wide."""
        config = self._candidate_config(params)
        uni = uniprocessor_config(config)

        cells: List[Tuple] = []
        layout: List[Tuple[MeasuredWorkload, int]] = []
        for m in self.measured:
            cells.append((m.trace_ref, uni, f"{m.name}/baseline"))
            layout.append((m, 0))
            for meas in m.measurements:
                cells.append(
                    (m.trace_ref, config.with_cpus(meas.cpus), f"{m.name}/{meas.cpus}cpu")
                )
                layout.append((m, meas.cpus))

        outcomes = self.engine.makespan_matrix(cells, use_cache=self.use_cache)
        self.evaluations += 1

        makespans: Dict[Tuple[str, int], int] = {}
        for (m, cpus), outcome in zip(layout, outcomes):
            if not outcome.ok:
                raise CalibrationError(
                    f"objective lost job {outcome.label}: {outcome.error}"
                )
            if not outcome.complete:
                raise CalibrationError(
                    f"objective job {outcome.label} came back partial "
                    f"({outcome.status}): {outcome.reason}"
                )
            makespans[(m.name, cpus)] = outcome.makespan_us

        rows: List[ErrorRow] = []
        for m in self.measured:
            baseline_us = makespans[(m.name, 0)]
            for meas in m.measurements:
                predicted = baseline_us / makespans[(m.name, meas.cpus)]
                rows.append(
                    ErrorRow(
                        workload=m.name,
                        cpus=meas.cpus,
                        real_speedup=meas.real_speedup,
                        predicted_speedup=predicted,
                        error=prediction_error(meas.real_speedup, predicted),
                    )
                )
        return rows

    def score(self, params: Mapping[str, float]) -> float:
        rows = self.error_table(params)
        value = mean_abs_error(rows)
        if self.cell_budget is not None:
            value += self.budget_weight * sum(
                max(0.0, r.abs_error - self.cell_budget) for r in rows
            )
        return value

    def __call__(self, vector: Sequence[float]) -> float:
        """Vector objective for the derivative-free fitters."""
        return self.score(self.space.to_dict(vector))

    def vector_fn(self) -> Callable[[Sequence[float]], float]:
        return self.__call__
