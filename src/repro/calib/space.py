"""The calibration search space: named, bounded cost-model parameters.

:class:`ParamSpace` is the fitter's view of
:func:`repro.solaris.costs.tunable_params`: an ordered list of scalar
knobs with bounds, convertible between the dict form the cost model
consumes (:func:`repro.solaris.costs.apply_params`) and the plain vector
form derivative-free optimisers walk.  All clipping happens here so the
optimisers themselves stay unconstrained.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.core.errors import ConfigError
from repro.solaris.costs import TunableParam, tunable_params

__all__ = ["ParamSpace", "default_space"]


@dataclass(frozen=True)
class ParamSpace:
    """An ordered, bounded set of tunable parameters.

    The canonical order of ``params`` defines the vector layout; every
    vector handed to or returned from the fitter has one component per
    parameter, in this order.
    """

    params: Tuple[TunableParam, ...]

    def __post_init__(self) -> None:
        if not self.params:
            raise ConfigError("parameter space is empty")
        seen = set()
        for p in self.params:
            if p.name in seen:
                raise ConfigError(f"duplicate parameter {p.name!r}")
            seen.add(p.name)
            if not p.lo < p.hi:
                raise ConfigError(
                    f"parameter {p.name!r} has an empty range [{p.lo}, {p.hi}]"
                )
            if not p.lo <= p.default <= p.hi:
                raise ConfigError(
                    f"parameter {p.name!r} default {p.default} outside "
                    f"[{p.lo}, {p.hi}]"
                )

    # ------------------------------------------------------------------

    @property
    def names(self) -> List[str]:
        return [p.name for p in self.params]

    def __len__(self) -> int:
        return len(self.params)

    def defaults(self) -> List[float]:
        return [p.default for p in self.params]

    def clip(self, vector: Sequence[float]) -> List[float]:
        """Project a vector back into the box (NaN snaps to the default)."""
        if len(vector) != len(self.params):
            raise ConfigError(
                f"vector of {len(vector)} values for a space of "
                f"{len(self.params)} parameters"
            )
        out = []
        for p, v in zip(self.params, vector):
            if math.isnan(v):
                v = p.default
            out.append(min(p.hi, max(p.lo, float(v))))
        return out

    def to_dict(self, vector: Sequence[float]) -> Dict[str, float]:
        """Vector → the named dict :func:`apply_params` consumes."""
        return dict(zip(self.names, self.clip(vector)))

    def to_vector(self, params: Mapping[str, float]) -> List[float]:
        """Named dict → vector (missing names take their defaults)."""
        unknown = set(params) - set(self.names)
        if unknown:
            raise ConfigError(
                f"unknown parameter(s) {sorted(unknown)} for this space"
            )
        return self.clip(
            [params.get(p.name, p.default) for p in self.params]
        )

    def steps(self, fraction: float = 0.1) -> List[float]:
        """Initial coordinate-descent step per parameter: a fraction of
        its range, but at least 1.0 for integral parameters (smaller
        moves round away to nothing)."""
        out = []
        for p in self.params:
            step = (p.hi - p.lo) * fraction
            if p.integral:
                step = max(1.0, step)
            out.append(step)
        return out

    def subset(self, names: Sequence[str]) -> "ParamSpace":
        """A space over only *names* (fixing everything else)."""
        wanted = set(names)
        unknown = wanted - set(self.names)
        if unknown:
            raise ConfigError(f"unknown parameter(s) {sorted(unknown)}")
        return ParamSpace(tuple(p for p in self.params if p.name in wanted))


def default_space() -> ParamSpace:
    """The full cost-model space from :mod:`repro.solaris.costs`."""
    return ParamSpace(tuple(tunable_params()))
