"""Synthetic random workloads.

Two uses:

* **property-based testing** — :func:`random_program` builds arbitrary
  but deadlock-free multithreaded programs (fork/join skeleton with
  random compute, mutex, semaphore and barrier activity) whose execution
  exercises every simulator path; hypothesis drives the parameters;
* **scaling experiments** — :func:`event_rate_program` emits a requested
  number of synchronisation events, for the §4 study of how log size
  drives prediction time (the paper ran logs up to 15 MB).
"""

from __future__ import annotations

import random


from repro.program import ops as op
from repro.program.program import Program, ThreadCtx, ThreadGen, barrier
from repro.workloads.base import Workload, register, spawn_and_join

__all__ = ["random_program", "event_rate_program", "make_program", "WORKLOAD"]


def random_program(
    seed: int,
    *,
    nthreads: int = 4,
    steps: int = 10,
    n_mutexes: int = 3,
    n_semas: int = 2,
    use_barriers: bool = True,
    max_compute_us: int = 5_000,
) -> Program:
    """A random but well-formed program.

    Deadlock freedom by construction: mutexes are held only across a
    single compute (no nesting), semaphores are posted at least as often
    as they are waited (producers post first via initial counts), and
    barriers always involve all *nthreads* workers.
    """
    if nthreads < 1:
        raise ValueError("nthreads must be >= 1")
    structure_rng = random.Random(f"synthetic-{seed}")

    # pre-plan per-step action kinds, identical for all threads where the
    # action must be collective (barriers)
    plan = []
    for s in range(steps):
        kind = structure_rng.choice(
            ["compute", "mutex", "sema", "barrier" if use_barriers else "compute"]
        )
        plan.append((kind, structure_rng.randrange(10_000)))

    def worker(ctx: ThreadCtx) -> ThreadGen:
        for s, (kind, salt) in enumerate(plan):
            work = ctx.rng.randrange(1, max_compute_us)
            yield op.Compute(work)
            if kind == "mutex":
                m = f"m{salt % n_mutexes}"
                yield op.MutexLock(m)
                yield op.Compute(ctx.rng.randrange(1, 200))
                yield op.MutexUnlock(m)
            elif kind == "sema":
                name = f"s{salt % n_semas}"
                # post before wait so counts never go unsatisfiable
                yield op.SemaPost(name)
                yield op.SemaWait(name)
            elif kind == "barrier":
                yield from barrier(ctx, f"b{s}", nthreads)

    return Program(
        name=f"synthetic-{seed}",
        main=spawn_and_join(nthreads, worker, set_concurrency=False),
        seed=seed,
    )


def event_rate_program(
    *,
    nthreads: int = 4,
    sync_ops: int = 1_000,
    work_per_op_us: int = 1_000,
    seed: int = 0,
) -> Program:
    """A program emitting roughly ``sync_ops`` mutex pairs in total.

    Used by the log-size scaling benchmark: the recorded log grows
    linearly with ``sync_ops`` while the runtime grows with
    ``sync_ops * work_per_op_us``, so event *rate* and log *size* can be
    swept independently.
    """
    per_thread = max(1, sync_ops // nthreads)

    def worker(ctx: ThreadCtx) -> ThreadGen:
        me = ctx.args[0]
        for i in range(per_thread):
            yield op.Compute(work_per_op_us)
            m = f"m{(me + i) % 8}"
            yield op.MutexLock(m)
            yield op.Compute(10)
            yield op.MutexUnlock(m)

    return Program(
        name=f"eventrate-{sync_ops}",
        main=spawn_and_join(nthreads, worker, set_concurrency=False),
        seed=seed,
    )


def make_program(nthreads: int = 4, scale: float = 1.0) -> Program:
    """Registry entry point: a fixed-structure random program.

    The *structure* seed is pinned (the same mix of mutex/semaphore/
    barrier steps every time) so the workload is a stable calibration
    target; the per-thread compute durations still follow the program
    seed, which :meth:`~repro.workloads.base.Workload.make_program`'s
    ``seed=`` can override.  ``scale`` stretches the step count.
    """
    return random_program(
        7,
        nthreads=nthreads,
        steps=max(4, round(24 * scale)),
        max_compute_us=5_000,
    )


WORKLOAD = register(
    Workload(
        name="synthetic",
        description="seeded random mutex/semaphore/barrier mix "
        "(calibration + property-test workload)",
        factory=make_program,
        default_threads=4,
    )
)
