"""Validation workloads: SPLASH-2 kernel models and the §5 case study."""

from repro.workloads import (  # noqa: F401
    excluded,
    fft,
    lu,
    ocean,
    prodcons,
    radix,
    synthetic,
    water,
)
from repro.workloads.base import (
    PAPER_TABLE1,
    PaperSpeedups,
    Workload,
    all_workloads,
    get_workload,
)

__all__ = [
    "PAPER_TABLE1",
    "PaperSpeedups",
    "Workload",
    "all_workloads",
    "get_workload",
    "excluded",
    "fft",
    "lu",
    "ocean",
    "prodcons",
    "radix",
    "synthetic",
    "water",
]
