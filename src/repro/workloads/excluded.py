"""The SPLASH-2 programs the paper could *not* validate — reproduced.

§4: "Barnes, Radiosity, Cholesky, and FMM could not run in one single LWP
as required by the Recorder.  The reason is that these programs all spin
on a variable, and since the thread never yields the CPU, no other thread
could possibly change the value of that variable.  The program Raytrace
and Volrend could not be used since all tasks that are executed by a
thread are put in a queue.  Whenever a thread is idle it steals a task
from another thread's queue.  The impact of using one LWP gives the
result that only one thread steals all tasks."

Both failure modes are worth having executable, because they delimit the
tool (§6 "Limitations and applicability"):

* :func:`make_spinner` — a Barnes-style program whose worker spins on a
  shared flag.  Monitoring it livelocks the single LWP;
  :func:`repro.program.uniexec.record_program` detects this and raises
  :class:`~repro.core.errors.MonitorabilityError`.
* :func:`make_task_stealer` — a Raytrace-style work-stealing program.  It
  *can* be monitored (stealing uses locks, which yield the LWP), but the
  one-LWP run degenerates: the first running thread steals essentially
  every task, so the log's work distribution is useless and the
  prediction badly underestimates the real speed-up.
  :func:`work_distribution` quantifies the degeneracy.
"""

from __future__ import annotations

from typing import Dict

from repro.core.trace import Trace
from repro.program import ops as op
from repro.program.program import Program, ThreadCtx, ThreadGen
from repro.workloads.base import Workload, register

__all__ = [
    "make_spinner",
    "make_task_stealer",
    "work_distribution",
    "stealing_degeneracy",
    "WORKLOAD_BARNES",
    "WORKLOAD_RAYTRACE",
]


def make_spinner(nthreads: int = 2, scale: float = 1.0) -> Program:
    """Barnes-style spin wait: unmonitorable on one LWP.

    The worker polls a shared flag with short computes and never calls
    the thread library while polling — on a single LWP the setter can
    never run, so the monitored execution livelocks (the Recorder's §4
    exclusion, surfaced as :class:`MonitorabilityError`).
    """

    def spinner(ctx: ThreadCtx) -> ThreadGen:
        while not ctx.shared.get("flag"):
            yield op.Compute(1)  # spin: no library call, never yields

    def setter(ctx: ThreadCtx) -> ThreadGen:
        yield op.Compute(round(1_000 * scale))
        ctx.shared["flag"] = True

    def main(ctx: ThreadCtx) -> ThreadGen:
        tids = [(yield op.ThrCreate(spinner, name="spinner"))]
        tids.append((yield op.ThrCreate(setter, name="setter")))
        for tid in tids:
            yield op.ThrJoin(tid)

    return Program("barnes-spin", main)


def make_task_stealer(
    nthreads: int = 4, scale: float = 1.0, *, tasks: int = 64
) -> Program:
    """Raytrace-style work stealing.

    A shared pool of tasks; each worker repeatedly takes the next task
    under a mutex and processes it.  On a real multiprocessor the workers
    share the pool ~evenly.  On the monitored single LWP, a worker only
    yields at the pool mutex — which is always free — so the first worker
    drains nearly the whole pool before the others ever run.
    """
    n_tasks = max(nthreads, round(tasks * scale))
    task_us = round(5_000 * max(scale, 0.01))

    def worker(ctx: ThreadCtx) -> ThreadGen:
        while True:
            yield op.MutexLock("pool")
            remaining = ctx.shared.get("tasks", 0)
            if remaining > 0:
                ctx.shared["tasks"] = remaining - 1
                taken = True
            else:
                taken = False
            yield op.MutexUnlock("pool")
            if not taken:
                return
            counts = ctx.shared.setdefault("done_by", {})
            counts[ctx.tid] = counts.get(ctx.tid, 0) + 1
            yield op.Compute(task_us)

    def main(ctx: ThreadCtx) -> ThreadGen:
        ctx.shared["tasks"] = n_tasks
        tids = []
        for i in range(nthreads):
            tids.append((yield op.ThrCreate(worker, name="worker")))
        for tid in tids:
            yield op.ThrJoin(tid)

    return Program("raytrace-steal", main)


def work_distribution(trace: Trace) -> Dict[int, int]:
    """Per-thread count of pool acquisitions in a task-stealing trace.

    A proxy for "who did the tasks": on the degenerate one-LWP recording
    one thread dominates; on a healthy multiprocessor run the counts are
    near-uniform.
    """
    from repro.core.events import Phase, Primitive

    counts: Dict[int, int] = {}
    for rec in trace:
        if (
            rec.primitive is Primitive.MUTEX_LOCK
            and rec.phase is Phase.CALL
            and rec.obj is not None
            and rec.obj.name == "pool"
        ):
            counts[int(rec.tid)] = counts.get(int(rec.tid), 0) + 1
    return counts


def stealing_degeneracy(trace: Trace) -> float:
    """Fraction of pool accesses made by the busiest thread (0.25 would
    be perfect balance for 4 workers; ~1.0 is the §4 degeneracy)."""
    counts = work_distribution(trace)
    total = sum(counts.values())
    if total == 0:
        return 0.0
    return max(counts.values()) / total


WORKLOAD_BARNES = register(
    Workload(
        name="barnes-spin",
        description="§4-excluded: spins on a variable (unmonitorable on 1 LWP)",
        factory=lambda nthreads, scale: make_spinner(nthreads, scale),
    )
)

WORKLOAD_RAYTRACE = register(
    Workload(
        name="raytrace-steal",
        description="§4-excluded: task stealing degenerates on 1 LWP",
        factory=lambda nthreads, scale: make_task_stealer(nthreads, scale),
    )
)
