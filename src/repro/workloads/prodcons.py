"""The §5 producer-consumer case study.

"There are 150 Producers, each implemented by a thread, which inserts ten
items in the buffer and then exits.  There are 75 Consumers, picking
[items] from the buffer.  A semaphore is used to represent the number of
items in the buffer, insertion and fetching of items is controlled by one
mutex.  The buffer size is large enough to avoid producer stalling."

Two variants, exactly following the paper's tuning narrative:

* :func:`make_naive` — a single mutex serialises every insert *and*
  fetch, so the program runs "only 2.2 % faster on 8 CPUs";
* :func:`make_tuned` — the fix the paper applies: "100 buffers with
  their own mutex locks.  We keep a mutex for the whole buffer system to
  lock the small amount of time to check which buffer to insert the item
  in.  We also have different mutexes for inserting and fetching."  The
  tuned program reaches 7.75x predicted / 7.90x measured on 8 CPUs.

The buffer-selection counters live in genuine shared state guarded by the
global mutex, so the tuned variant is schedule-dependent — which is why
its prediction error (1.9 % in the paper) is larger than the barrier
kernels'.
"""

from __future__ import annotations

from repro.program import ops as op
from repro.program.program import Program, ThreadCtx, ThreadGen
from repro.workloads.base import Workload, register

__all__ = [
    "make_naive",
    "make_tuned",
    "make_racy",
    "make_clean",
    "make_program",
    "WORKLOAD",
    "WORKLOAD_TUNED",
    "WORKLOAD_RACY",
]

N_PRODUCERS = 150
N_CONSUMERS = 75
ITEMS_PER_PRODUCER = 10
N_BUFFERS = 100

#: µs to copy an item into / out of the buffer (the critical section)
COPY_US = 2_000
#: µs of work outside the buffer (prepare / use an item)
OUTSIDE_US = 80
#: µs the tuned variant holds the global mutex to pick a buffer
PICK_US = 5


def _sizes(scale: float):
    producers = max(2, round(N_PRODUCERS * scale))
    consumers = max(1, round(N_CONSUMERS * scale))
    total_items = producers * ITEMS_PER_PRODUCER
    per_consumer, extra = divmod(total_items, consumers)
    return producers, consumers, per_consumer, extra


def make_naive(scale: float = 1.0, *, nthreads: int = 0) -> Program:
    """The initial program: one mutex for the whole buffer.

    ``nthreads`` is accepted for registry uniformity; the §5 program has
    a fixed thread population (producers + consumers), not one thread per
    processor.
    """
    producers, consumers, per_consumer, extra = _sizes(scale)

    def producer(ctx: ThreadCtx) -> ThreadGen:
        for _ in range(ITEMS_PER_PRODUCER):
            yield op.Compute(OUTSIDE_US)  # produce the item
            yield op.MutexLock("buffer")
            yield op.Compute(COPY_US)  # insert under the global lock
            yield op.MutexUnlock("buffer")
            yield op.SemaPost("items")

    def consumer(ctx: ThreadCtx) -> ThreadGen:
        n = per_consumer + (1 if ctx.args[0] < extra else 0)
        for _ in range(n):
            yield op.SemaWait("items")
            yield op.MutexLock("buffer")
            yield op.Compute(COPY_US)  # fetch under the same lock
            yield op.MutexUnlock("buffer")
            yield op.Compute(OUTSIDE_US)  # use the item

    def main(ctx: ThreadCtx) -> ThreadGen:
        tids = []
        for i in range(producers):
            tids.append((yield op.ThrCreate(producer, args=(i,), name="producer")))
        for i in range(consumers):
            tids.append((yield op.ThrCreate(consumer, args=(i,), name="consumer")))
        for tid in tids:
            yield op.ThrJoin(tid)

    return Program(name="prodcons-naive", main=main)


def make_tuned(scale: float = 1.0, *, nthreads: int = 0) -> Program:
    """The tuned program: 100 buffers, split insert/fetch mutexes."""
    producers, consumers, per_consumer, extra = _sizes(scale)
    n_buffers = max(2, round(N_BUFFERS * min(1.0, scale * 2)))

    def producer(ctx: ThreadCtx) -> ThreadGen:
        for _ in range(ITEMS_PER_PRODUCER):
            yield op.Compute(OUTSIDE_US)
            # briefly lock the buffer system to pick a buffer
            yield op.MutexLock("system")
            buf = ctx.shared.get("next_in", 0) % n_buffers
            ctx.shared["next_in"] = ctx.shared.get("next_in", 0) + 1
            yield op.Compute(PICK_US)
            yield op.MutexUnlock("system")
            # insert under that buffer's own insert mutex
            yield op.MutexLock(f"in_{buf}")
            yield op.Compute(COPY_US)
            yield op.MutexUnlock(f"in_{buf}")
            yield op.SemaPost("items")

    def consumer(ctx: ThreadCtx) -> ThreadGen:
        n = per_consumer + (1 if ctx.args[0] < extra else 0)
        for _ in range(n):
            yield op.SemaWait("items")
            yield op.MutexLock("system")
            buf = ctx.shared.get("next_out", 0) % n_buffers
            ctx.shared["next_out"] = ctx.shared.get("next_out", 0) + 1
            yield op.Compute(PICK_US)
            yield op.MutexUnlock("system")
            # fetch under the buffer's separate fetch mutex
            yield op.MutexLock(f"out_{buf}")
            yield op.Compute(COPY_US)
            yield op.MutexUnlock(f"out_{buf}")
            yield op.Compute(OUTSIDE_US)

    def main(ctx: ThreadCtx) -> ThreadGen:
        tids = []
        for i in range(producers):
            tids.append((yield op.ThrCreate(producer, args=(i,), name="producer")))
        for i in range(consumers):
            tids.append((yield op.ThrCreate(consumer, args=(i,), name="consumer")))
        for tid in tids:
            yield op.ThrJoin(tid)

    return Program(name="prodcons-tuned", main=main)


def make_racy(scale: float = 0.05, *, nthreads: int = 0) -> Program:
    """A deliberately broken producer-consumer: the lint true-positive fixture.

    Two defects are planted, one per headline rule:

    * producers write the shared ``slot`` descriptor *before* taking any
      lock while consumers read it under the buffer locks — an
      Eraser-detectable data race (``VPPB-R001``);
    * producers nest ``head`` → ``tail`` while consumers nest ``tail`` →
      ``head`` — the classic ABBA inversion (``VPPB-R002``).  The
      recorded one-LWP run cannot deadlock, which is exactly why only a
      lock-order analysis can see the hazard.

    The default scale keeps the fixture trace small enough for CI.
    """
    producers, consumers, per_consumer, extra = _sizes(scale)

    def producer(ctx: ThreadCtx) -> ThreadGen:
        for _ in range(ITEMS_PER_PRODUCER):
            yield op.Compute(OUTSIDE_US)
            yield op.SharedWrite("slot")  # BUG: published before locking
            yield op.MutexLock("head")
            yield op.MutexLock("tail")  # BUG: inverted vs. the consumer
            yield op.Compute(COPY_US)
            yield op.MutexUnlock("tail")
            yield op.MutexUnlock("head")
            yield op.SemaPost("items")

    def consumer(ctx: ThreadCtx) -> ThreadGen:
        n = per_consumer + (1 if ctx.args[0] < extra else 0)
        for _ in range(n):
            yield op.SemaWait("items")
            yield op.MutexLock("tail")
            yield op.MutexLock("head")
            yield op.SharedRead("slot")
            yield op.Compute(COPY_US)
            yield op.MutexUnlock("head")
            yield op.MutexUnlock("tail")
            yield op.Compute(OUTSIDE_US)

    def main(ctx: ThreadCtx) -> ThreadGen:
        tids = []
        for i in range(producers):
            tids.append((yield op.ThrCreate(producer, args=(i,), name="producer")))
        for i in range(consumers):
            tids.append((yield op.ThrCreate(consumer, args=(i,), name="consumer")))
        for tid in tids:
            yield op.ThrJoin(tid)

    return Program(name="prodcons-racy", main=main)


def make_clean(scale: float = 0.05, *, nthreads: int = 0) -> Program:
    """The same program with the defects fixed: the false-positive guard.

    Every ``slot`` access happens under the ``buffer`` mutex and there is
    a single lock, so a correct lint run must report **zero** findings —
    any output here is a lint bug, not a program bug.
    """
    producers, consumers, per_consumer, extra = _sizes(scale)

    def producer(ctx: ThreadCtx) -> ThreadGen:
        for _ in range(ITEMS_PER_PRODUCER):
            yield op.Compute(OUTSIDE_US)
            yield op.MutexLock("buffer")
            yield op.SharedWrite("slot")
            yield op.Compute(COPY_US)
            yield op.MutexUnlock("buffer")
            yield op.SemaPost("items")

    def consumer(ctx: ThreadCtx) -> ThreadGen:
        n = per_consumer + (1 if ctx.args[0] < extra else 0)
        for _ in range(n):
            yield op.SemaWait("items")
            yield op.MutexLock("buffer")
            yield op.SharedRead("slot")
            yield op.Compute(COPY_US)
            yield op.MutexUnlock("buffer")
            yield op.Compute(OUTSIDE_US)

    def main(ctx: ThreadCtx) -> ThreadGen:
        tids = []
        for i in range(producers):
            tids.append((yield op.ThrCreate(producer, args=(i,), name="producer")))
        for i in range(consumers):
            tids.append((yield op.ThrCreate(consumer, args=(i,), name="consumer")))
        for tid in tids:
            yield op.ThrJoin(tid)

    return Program(name="prodcons-clean", main=main)


def make_program(nthreads: int = 0, scale: float = 1.0) -> Program:
    """Registry entry point (the naive §5 program)."""
    return make_naive(scale, nthreads=nthreads)


WORKLOAD = register(
    Workload(
        name="prodcons",
        description="§5 producer-consumer case study (naive, serialised)",
        factory=make_program,
        default_threads=0,
    )
)

WORKLOAD_TUNED = register(
    Workload(
        name="prodcons-tuned",
        description="§5 producer-consumer after tuning (100 buffers)",
        factory=lambda nthreads, scale: make_tuned(scale, nthreads=nthreads),
        default_threads=0,
    )
)

WORKLOAD_RACY = register(
    Workload(
        name="prodcons-racy",
        description="producer-consumer with a planted race + ABBA inversion"
        " (lint fixture)",
        factory=lambda nthreads, scale: make_racy(nthreads=nthreads),
        default_threads=0,
    )
)
