"""Ocean: SPLASH-2 ocean current simulation (514x514 grid, contiguous).

Ocean is the paper's stress case: the largest log (1.4 MB), the highest
event rate (653 events/s), the biggest recording overhead (2.6 %) and the
worst prediction error (6.2 % on 8 CPUs) — while its real speed-up is
good but noisy (6.65 with a 6.20–7.15 spread over five runs).

The model reproduces the ingredients behind each of those:

* **many events** — each of the multigrid iterations runs several short
  phases separated by barriers, plus a global error reduction under a
  mutex, so Ocean emits far more synchronisation per second than the
  other four kernels;
* **mild load imbalance** — per-thread, per-iteration work jitters a few
  percent (grid rows interact unevenly), making real runs noisy;
* **a replay-hostile pattern** — once per iteration every thread
  opportunistically folds statistics into a shared accumulator with
  ``mutex_trylock``: when the lock is busy it defers the fold and carries
  the backlog to the next attempt.  On the monitored uni-processor the
  trylock *always* succeeds (no concurrency), so the §3.2 replay rule
  pins it to "acquired" and replays a blocking lock — but on a real
  multiprocessor the lock is contended and many folds are deferred.  The
  prediction therefore serialises work the real run avoids, and the error
  grows with the processor count — Ocean's Table 1 signature.
"""

from __future__ import annotations

from repro.program import ops as op
from repro.program.program import Program, ThreadCtx, ThreadGen, barrier
from repro.workloads.base import Workload, register, spawn_and_join

__all__ = ["make_program", "WORKLOAD", "GAMMA"]

#: mild memory-system contention (Ocean scales well: 6.65 at 8 CPUs)
GAMMA = 0.02

#: multigrid iterations
ITERATIONS = 40

#: uni-processor per-iteration phase durations (µs) over the 514x514 grid
RELAX_US = 1_600_000
RESIDUAL_US = 800_000
BOUNDARY_US = 300_000

#: statistics fold under the trylock-guarded accumulator, as a fraction
#: of one iteration's total grid work; the replay-hostile knob described
#: in the module docstring.  Sized so the replay's pessimistic
#: serialisation costs ~6 % at 8 CPUs and ~P^2-proportionally less below
#: (the paper's error gradient: 0.5 / 0.5 / 6.2 %).
FOLD_FRACTION = 0.0008

#: per-thread, per-iteration work spread (grid row imbalance)
IMBALANCE = 0.03


def _worker(nthreads: int, scale: float):
    iters = max(2, round(ITERATIONS * scale))
    contention = 1.0 + GAMMA * (nthreads - 1)
    iter_work = (RELAX_US + RESIDUAL_US + BOUNDARY_US) * scale
    fold_us = max(20, round(iter_work * FOLD_FRACTION))

    def share(total_us: int, ctx: ThreadCtx) -> int:
        skew = 1.0 + IMBALANCE * (2.0 * ctx.rng.random() - 1.0)
        return round(total_us * scale / nthreads * skew * contention)

    def worker(ctx: ThreadCtx) -> ThreadGen:
        backlog = 1
        for it in range(iters):
            # multigrid relaxation: red sweep, black sweep, coarse-grid
            # correction — each ends at a barrier (this is what makes
            # Ocean the most synchronisation-dense of the five kernels)
            for level, frac in (("red", 0.4), ("black", 0.4), ("coarse", 0.2)):
                yield op.Compute(share(round(RELAX_US * frac), ctx))
                yield from barrier(ctx, f"relax_{level}_{it}", nthreads)

            # residual computation + global error reduction
            yield op.Compute(share(RESIDUAL_US, ctx))
            yield op.MutexLock("err")
            ctx.shared["err"] = ctx.shared.get("err", 0.0) + ctx.rng.random()
            yield op.Compute(40)
            yield op.MutexUnlock("err")
            yield from barrier(ctx, f"resid_{it}", nthreads)

            # opportunistic statistics fold (schedule-dependent!)
            got = yield op.MutexTrylock("stats")
            if got:
                yield op.Compute(fold_us * backlog)
                backlog = 1
                yield op.MutexUnlock("stats")
            else:
                backlog += 1  # defer; fold more next time

            # boundary exchange
            yield op.Compute(share(BOUNDARY_US, ctx))
            yield from barrier(ctx, f"bound_{it}", nthreads)

    return worker


def make_program(nthreads: int = 8, scale: float = 1.0) -> Program:
    """Ocean with one thread per processor."""
    return Program(
        name=f"ocean-p{nthreads}",
        main=spawn_and_join(nthreads, _worker(nthreads, scale)),
        seed=nthreads,
    )


WORKLOAD = register(
    Workload(
        name="ocean",
        description="SPLASH-2 Ocean, 514x514 grid (fine-grained, noisy)",
        factory=make_program,
    )
)
