"""Water-Spatial: SPLASH-2 molecular dynamics (512 molecules, 30 steps).

Per timestep: intra-molecular force computation (perfectly parallel),
a barrier; inter-molecular forces over the spatial cell grid (parallel
with slight imbalance), during which threads fold boundary contributions
into neighbour cells under a small pool of per-cell locks; a barrier;
then a kinetic-energy reduction under one global mutex and a final
barrier.

Water-Spatial is Table 1's second-best scaler (7.67 on 8 CPUs): cell
locks are many and rarely contended, so nearly all loss is barrier wait
plus a whisper of memory contention.
"""

from __future__ import annotations

from repro.program import ops as op
from repro.program.program import Program, ThreadCtx, ThreadGen, barrier
from repro.workloads.base import Workload, register, spawn_and_join

__all__ = ["make_program", "WORKLOAD", "GAMMA"]

#: near-negligible memory contention (7.67 of 8 in Table 1)
GAMMA = 0.006

#: simulated timesteps (the paper's data set runs 30)
TIMESTEPS = 30

#: uni-processor per-step durations (µs) for 512 molecules
INTRA_US = 1_400_000
INTER_US = 2_400_000
REDUCE_US = 60

#: spatial cell-lock pool (boundary fold-ins pick from these)
N_CELL_LOCKS = 27
FOLDS_PER_STEP = 4
FOLD_US = 30

#: per-thread work spread (molecules per cell vary)
IMBALANCE = 0.02


def _worker(nthreads: int, scale: float):
    steps = max(1, round(TIMESTEPS * scale))
    contention = 1.0 + GAMMA * (nthreads - 1)

    def share(total_us: int, ctx: ThreadCtx) -> int:
        skew = 1.0 + IMBALANCE * (2.0 * ctx.rng.random() - 1.0)
        return round(total_us * scale / nthreads * skew * contention)

    def worker(ctx: ThreadCtx) -> ThreadGen:
        for step in range(steps):
            # intra-molecular forces
            yield op.Compute(share(INTRA_US, ctx))
            yield from barrier(ctx, f"intra_{step}", nthreads)

            # inter-molecular forces with boundary-cell fold-ins
            inter = share(INTER_US, ctx)
            chunk = inter // (FOLDS_PER_STEP + 1)
            for f in range(FOLDS_PER_STEP):
                yield op.Compute(chunk)
                cell = ctx.rng.randrange(N_CELL_LOCKS)
                yield op.MutexLock(f"cell_{cell}")
                yield op.Compute(FOLD_US)
                yield op.MutexUnlock(f"cell_{cell}")
            yield op.Compute(inter - chunk * FOLDS_PER_STEP)
            yield from barrier(ctx, f"inter_{step}", nthreads)

            # kinetic-energy reduction
            yield op.MutexLock("kinetic")
            ctx.shared["ke"] = ctx.shared.get("ke", 0.0) + ctx.rng.random()
            yield op.Compute(REDUCE_US)
            yield op.MutexUnlock("kinetic")
            yield from barrier(ctx, f"kin_{step}", nthreads)

    return worker


def make_program(nthreads: int = 8, scale: float = 1.0) -> Program:
    """Water-Spatial with one thread per processor."""
    return Program(
        name=f"water-p{nthreads}",
        main=spawn_and_join(nthreads, _worker(nthreads, scale)),
        seed=nthreads,
    )


WORKLOAD = register(
    Workload(
        name="water",
        description="SPLASH-2 Water-Spatial, 512 molecules, 30 timesteps",
        factory=make_program,
    )
)
