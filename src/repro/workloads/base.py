"""Workload infrastructure for the §4/§5 validation programs.

Each workload module models one SPLASH-2 kernel's *synchronisation
skeleton*: the phase structure, barrier counts, reduction locks and load
(im)balance that drive its multiprocessor behaviour.  The numeric work the
kernels do is abstracted into :class:`~repro.program.ops.Compute` bursts
whose durations are derived from the paper's problem sizes on a
mid-1990s SPARC (tens of ns per element-op), scaled by a ``scale`` factor
so tests can run miniatures while benchmarks run paper-scale instances
(uni-processor runtimes of 60–210 s, ≤ 653 events/s — §4's measured
envelope).

Every workload follows the SPLASH-2 convention the paper relies on: the
program "creates one thread per physical processor", so one log file is
recorded per processor setup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.program import ops as op
from repro.program.program import Program, ThreadCtx, ThreadGen, barrier

__all__ = [
    "Workload",
    "PaperSpeedups",
    "PAPER_TABLE1",
    "register",
    "get_workload",
    "all_workloads",
    "spawn_and_join",
]


@dataclass(frozen=True)
class PaperSpeedups:
    """A Table 1 row: the paper's measured and predicted speed-ups."""

    real: Dict[int, float]
    predicted: Dict[int, float]
    real_range: Dict[int, Tuple[float, float]] = field(default_factory=dict)


#: Table 1 of the paper, verbatim (real is the middle of five runs).
PAPER_TABLE1: Dict[str, PaperSpeedups] = {
    # predicted = real * (1 - error), errors from Table 1 (Ocean's 6.2 %
    # at 8 CPUs is the paper's worst case, still inside the min-max band)
    "ocean": PaperSpeedups(
        real={2: 1.97, 4: 3.87, 8: 6.65},
        predicted={2: 1.96, 4: 3.85, 8: 6.24},
        real_range={2: (1.86, 1.99), 4: (3.82, 3.94), 8: (6.20, 7.15)},
    ),
    "water": PaperSpeedups(
        real={2: 1.99, 4: 3.95, 8: 7.67},
        predicted={2: 1.98, 4: 3.91, 8: 7.56},
        real_range={2: (1.98, 1.99), 4: (3.94, 3.96), 8: (7.62, 7.70)},
    ),
    "fft": PaperSpeedups(
        real={2: 1.55, 4: 2.14, 8: 2.62},
        predicted={2: 1.55, 4: 2.14, 8: 2.61},
        real_range={2: (1.54, 1.56), 4: (2.13, 2.16), 8: (2.59, 2.64)},
    ),
    "radix": PaperSpeedups(
        real={2: 2.00, 4: 3.99, 8: 7.79},
        predicted={2: 1.98, 4: 3.95, 8: 7.71},
        real_range={2: (1.99, 2.00), 4: (3.98, 4.00), 8: (7.76, 7.82)},
    ),
    "lu": PaperSpeedups(
        real={2: 1.79, 4: 3.15, 8: 4.82},
        predicted={2: 1.79, 4: 3.14, 8: 4.81},
        real_range={2: (1.78, 1.80), 4: (3.14, 3.16), 8: (4.79, 4.86)},
    ),
}


@dataclass(frozen=True)
class Workload:
    """A named, parameterised validation program.

    ``factory(nthreads, scale)`` builds the Program; ``scale=1.0`` is the
    paper-sized instance, smaller values shrink work and iteration counts
    proportionally (for tests).
    """

    name: str
    description: str
    factory: Callable[[int, float], Program]
    default_threads: int = 8

    def make_program(
        self, nthreads: int, scale: float = 1.0, *, seed: Optional[int] = None
    ) -> Program:
        """Build the program; ``seed`` pins its per-thread RNG streams.

        Every program built with the same *(nthreads, scale, seed)*
        triple records an identical trace and measures identically under
        the same perturbation seeds — the reproducibility contract the
        calibration suite fits against.  ``seed=None`` keeps the
        factory's own default.
        """
        if nthreads < 1:
            raise ValueError(f"nthreads must be >= 1, got {nthreads}")
        if scale <= 0:
            raise ValueError(f"scale must be > 0, got {scale}")
        program = self.factory(nthreads, scale)
        if seed is not None:
            program.seed = int(seed)
        return program


_REGISTRY: Dict[str, Workload] = {}


def register(workload: Workload) -> Workload:
    """Add a workload to the global registry (module import time)."""
    if workload.name in _REGISTRY:
        raise ValueError(f"duplicate workload {workload.name!r}")
    _REGISTRY[workload.name] = workload
    return workload


def get_workload(name: str) -> Workload:
    """Look up a workload; imports the standard set on first use."""
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def all_workloads() -> List[Workload]:
    _ensure_loaded()
    return [w for _, w in sorted(_REGISTRY.items())]


def _ensure_loaded() -> None:
    if _REGISTRY:
        return
    # importing the modules registers their workloads
    from repro.workloads import (  # noqa: F401
        excluded,
        fft,
        lu,
        ocean,
        prodcons,
        radix,
        synthetic,
        water,
    )


def spawn_and_join(
    nthreads: int,
    body: Callable[[ThreadCtx], ThreadGen],
    *,
    set_concurrency: bool = True,
) -> Callable[[ThreadCtx], ThreadGen]:
    """Build the canonical SPLASH-2 ``main``: request concurrency, create
    one worker per processor, join them all."""

    def main(ctx: ThreadCtx) -> ThreadGen:
        if set_concurrency:
            yield op.ThrSetConcurrency(nthreads)
        tids = []
        for i in range(nthreads):
            tids.append((yield op.ThrCreate(body, args=(i,))))
        for tid in tids:
            yield op.ThrJoin(tid)

    return main
