"""LU: SPLASH-2 blocked dense LU factorisation (contiguous, 768x768,
16x16 blocks).

Per elimination step ``k`` (48 steps for a 48x48 block grid):

* the diagonal block is factorised by its owner alone (a serial phase all
  other threads wait out at a barrier),
* the perimeter row/column blocks are updated in parallel,
* a barrier, then the ``(K-k-1)^2`` interior blocks are updated in
  parallel (2-D scattered static ownership, so late steps leave some
  threads idle), and a final barrier ends the step.

The shrinking interior and the serial diagonal give LU its mid-range
curve.  The remaining gap to Table 1 (1.79 / 3.15 / 4.82) is the E4000's
memory system under a 768x768 working set; as with FFT it is modelled as
a contention factor on the parallel updates: per-thread duration
``share * (1 + GAMMA * (P - 1))`` with ``GAMMA = 0.07``, which (with the
2-D scatter's granularity imbalance) lands the closed-form curve on
1.84 / 3.11 / 4.75.
"""

from __future__ import annotations

from repro.program import ops as op
from repro.program.program import Program, ThreadCtx, ThreadGen, barrier
from repro.workloads.base import Workload, register, spawn_and_join

__all__ = ["make_program", "WORKLOAD", "GAMMA"]

#: memory-contention growth per extra processor (see module docstring)
GAMMA = 0.07

#: block grid dimension (768 / 16)
K_BLOCKS = 48

#: per-block update costs (µs): a 16x16 dgemm-ish update on ~1997 SPARC
DIAG_US = 1_500
PERIMETER_US = 2_000
INTERIOR_US = 2_500


def _grid(nthreads: int) -> tuple:
    """Processor grid (pr x pc): the largest divisor pair near square."""
    pr = 1
    for d in range(1, int(nthreads**0.5) + 1):
        if nthreads % d == 0:
            pr = d
    return pr, nthreads // pr


def _owner(i: int, j: int, nthreads: int) -> int:
    """2-D scattered static block ownership (SPLASH-2 LU layout).

    Block (i, j) belongs to processor ``(i mod pr, j mod pc)`` of a
    pr x pc grid, so remaining blocks stay spread over all processors as
    the factorisation shrinks.
    """
    pr, pc = _grid(nthreads)
    return (i % pr) * pc + (j % pc)


def _worker(nthreads: int, scale: float):
    # scale shrinks per-block cost, not the grid: the block-grid shape is
    # what produces LU's speed-up curve, so it must survive miniaturisation
    k_blocks = K_BLOCKS
    diag_us = max(1, round(DIAG_US * scale))
    perimeter_us = max(1, round(PERIMETER_US * scale))
    interior_us = max(1, round(INTERIOR_US * scale))
    contention = 1.0 + GAMMA * (nthreads - 1)

    def worker(ctx: ThreadCtx) -> ThreadGen:
        me = ctx.args[0]
        for k in range(k_blocks):
            # 1. diagonal factorisation: owner only
            if _owner(k, k, nthreads) == me:
                yield op.Compute(round(diag_us * contention))
            yield from barrier(ctx, f"diag_{k}", nthreads)

            # 2. perimeter updates: blocks (i,k) and (k,j), i,j > k
            mine = sum(
                1
                for i in range(k + 1, k_blocks)
                if _owner(i, k, nthreads) == me
            ) + sum(
                1
                for j in range(k + 1, k_blocks)
                if _owner(k, j, nthreads) == me
            )
            if mine:
                yield op.Compute(round(mine * perimeter_us * contention))
            yield from barrier(ctx, f"perim_{k}", nthreads)

            # 3. interior updates: blocks (i,j), i,j > k
            mine = sum(
                1
                for i in range(k + 1, k_blocks)
                for j in range(k + 1, k_blocks)
                if _owner(i, j, nthreads) == me
            )
            if mine:
                yield op.Compute(round(mine * interior_us * contention))
            yield from barrier(ctx, f"inner_{k}", nthreads)

    return worker


def make_program(nthreads: int = 8, scale: float = 1.0) -> Program:
    """Blocked LU with one thread per processor."""
    return Program(
        name=f"lu-p{nthreads}",
        main=spawn_and_join(nthreads, _worker(nthreads, scale)),
        seed=nthreads,
    )


WORKLOAD = register(
    Workload(
        name="lu",
        description="SPLASH-2 blocked LU, 768x768 matrix, 16x16 blocks",
        factory=make_program,
    )
)
