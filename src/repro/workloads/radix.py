"""Radix: SPLASH-2 integer radix sort (16 M keys, radix 1024).

Synchronisation skeleton per digit pass (three passes cover 30 bits of
key): every thread histograms its key block (perfectly parallel), the
per-digit counts are combined in a logarithmic prefix tree (log2(P) tiny
steps, one barrier each), then keys are permuted to their destination
(parallel), and a barrier ends the pass.

Radix is the best scaler in Table 1 (7.79× on 8 CPUs): almost all work is
in the embarrassingly parallel histogram/permute phases, so the model's
only losses are the tree steps, barriers and thread start-up.
"""

from __future__ import annotations

import math

from repro.program import ops as op
from repro.program.program import Program, ThreadCtx, ThreadGen, barrier
from repro.workloads.base import Workload, register, spawn_and_join

__all__ = ["make_program", "WORKLOAD"]

#: digit passes: 30-bit keys, 10-bit radix
PASSES = 3

#: uni-processor work per pass (µs): histogram + permute over 16 M keys
#: at ~1.9 µs per 1 K keys on a ~1997 SPARC — ~30 s per pass, ~90 s total,
#: inside the paper's 60–210 s envelope.
HIST_US = 12_000_000
PERMUTE_US = 18_000_000

#: per-node cost of one prefix-tree combine step
TREE_STEP_US = 400

#: relative spread of per-thread work (key distribution imbalance)
IMBALANCE = 0.01


def _worker(nthreads: int, scale: float):
    hist_total = round(HIST_US * scale)
    permute_total = round(PERMUTE_US * scale)
    tree_steps = max(1, math.ceil(math.log2(nthreads))) if nthreads > 1 else 1

    def worker(ctx: ThreadCtx) -> ThreadGen:
        for p in range(PASSES):
            # local histogram of this thread's block of keys
            share = hist_total // nthreads
            skew = 1.0 + IMBALANCE * (2.0 * ctx.rng.random() - 1.0)
            yield op.Compute(round(share * skew))
            yield from barrier(ctx, f"hist_{p}", nthreads)

            # logarithmic prefix combine (the "rank" phase)
            for step in range(tree_steps):
                yield op.Compute(TREE_STEP_US)
                yield from barrier(ctx, f"rank_{p}_{step}", nthreads)

            # permute keys to their destination block
            share = permute_total // nthreads
            skew = 1.0 + IMBALANCE * (2.0 * ctx.rng.random() - 1.0)
            yield op.Compute(round(share * skew))
            yield from barrier(ctx, f"perm_{p}", nthreads)

    return worker


def make_program(nthreads: int = 8, scale: float = 1.0) -> Program:
    """Radix with one thread per processor (SPLASH-2 convention)."""
    return Program(
        name=f"radix-p{nthreads}",
        main=spawn_and_join(nthreads, _worker(nthreads, scale)),
        seed=nthreads,
    )


WORKLOAD = register(
    Workload(
        name="radix",
        description="SPLASH-2 Radix sort, 16M keys, radix 1024",
        factory=make_program,
    )
)
