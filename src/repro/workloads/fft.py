"""FFT: SPLASH-2 1-D six-step FFT (4 M complex points).

The six-step algorithm alternates perfectly parallel column FFT/twiddle
phases with three all-to-all matrix transposes.  On the paper's E4000 the
transposes are memory-bound: every processor streams through every other
processor's partition, so their effective per-thread cost *grows* with
the processor count instead of shrinking — which is why FFT is Table 1's
worst scaler (1.55 / 2.14 / 2.62 on 2/4/8 CPUs).

The simulator models CPUs and synchronisation, not the memory system, so
the transpose contention is part of the workload model: a transpose's
per-thread duration is ``(T/P) * (1 + BETA * (P - 1))``.  With the
transpose fraction ``f = 0.4`` of total work and ``BETA = 0.725`` the
closed form ``S(P) = 1 / ((1-f)/P + (f/P)(1 + BETA(P-1)))`` lands on
1.55 / 2.14 / 2.64 — the paper's curve to within 1 %.
"""

from __future__ import annotations

from repro.program import ops as op
from repro.program.program import Program, ThreadCtx, ThreadGen, barrier
from repro.workloads.base import Workload, register, spawn_and_join

__all__ = ["make_program", "WORKLOAD", "BETA"]

#: memory-contention growth per extra processor during a transpose
BETA = 0.725

#: uni-processor durations (µs): two FFT compute phases and three
#: transposes over 4 M points; ~70 s total on one processor.
FFT_PHASE_US = 21_000_000  # x2
TRANSPOSE_US = 9_333_333  # x3  (transpose fraction f = 0.4)


def _worker(nthreads: int, scale: float):
    fft_total = round(FFT_PHASE_US * scale)
    tr_total = round(TRANSPOSE_US * scale)

    def transpose_share() -> int:
        # per-thread transpose time: 1/P of the data, slowed by the
        # all-to-all traffic of the other P-1 processors
        return round(tr_total / nthreads * (1.0 + BETA * (nthreads - 1)))

    def worker(ctx: ThreadCtx) -> ThreadGen:
        phases = [
            ("t1", transpose_share),
            ("fft1", lambda: fft_total // nthreads),
            ("t2", transpose_share),
            ("fft2", lambda: fft_total // nthreads),
            ("t3", transpose_share),
        ]
        for name, share in phases:
            yield op.Compute(share())
            yield from barrier(ctx, name, nthreads)

    return worker


def make_program(nthreads: int = 8, scale: float = 1.0) -> Program:
    """Six-step FFT with one thread per processor."""
    return Program(
        name=f"fft-p{nthreads}",
        main=spawn_and_join(nthreads, _worker(nthreads, scale)),
        seed=nthreads,
    )


WORKLOAD = register(
    Workload(
        name="fft",
        description="SPLASH-2 1-D FFT, 4M points (memory-bound transposes)",
        factory=make_program,
    )
)
