"""The two-level scheduler *mechanism* (§3.2), policy supplied by a backend.

Scheduling happens at two levels, exactly as the paper describes:

* **user level** — unbound user threads are multiplexed on the process's
  pool of LWPs.  A thread keeps its LWP until it blocks at a
  synchronisation point (user-level scheduling is not time-sliced); when it
  blocks, the LWP immediately picks the highest-priority runnable unbound
  thread, or parks idle.
* **kernel level** — LWPs (kernel threads) are the only objects the
  operating system schedules.  *Which* LWP runs next, for how long, and at
  whose expense is decided by the configured
  :class:`~repro.sched.base.SchedulerBackend`
  (``SimConfig.scheduler``): the default ``"solaris"`` backend reproduces
  the paper's TS/RT dispatch bit-for-bit (priority aging by the dispatch
  table, sleep-return boosts, starvation lifts, priority preemption);
  ``"clutch"`` and ``"cfs"`` replay the same trace under XNU-Clutch-style
  and Linux-CFS-style kernels instead.

This class owns everything backend-independent: CPUs, the LWP pool,
burst/quantum event arming (with event recycling for the replay fast
path), the runnable map, block/wake plumbing and the atomic dispatch
deferral.  The backend's hot hooks are pre-bound to instance attributes
in ``__init__`` — the same handler-binding discipline the compiled
replay fast path uses — so backend dispatch adds one bound-method call,
not an interface lookup, per decision.

Threads bound to an LWP own a dedicated LWP for life; threads bound to a
CPU have that LWP pinned to the processor.  A wake-up that crosses CPUs is
delivered after the configured communication delay (§3.2: the delay
"affects how fast an event on one CPU is propagated to another CPU").

The scheduler is driven by, and reports to, the Simulator through the
narrow :class:`SchedulerListener` protocol; it records every thread-state
transition into the :class:`~repro.core.result.ResultBuilder` so the
Visualizer can draw the §3.3 graphs.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Protocol, Tuple

from repro.core.config import SimConfig
from repro.core.engine import Engine, ScheduledEvent
from repro.core.errors import SimulationError
from repro.core.ids import LwpId
from repro.core.result import ResultBuilder, SegmentKind, ThreadSegment
from repro.sched import create_backend
from repro.solaris.lwp import LwpState, SimLwp
from repro.solaris.sync import WaitQueue
from repro.solaris.thread_model import SimThread, ThreadState

__all__ = ["SchedulerListener", "Scheduler", "SimCpu"]


class SchedulerListener(Protocol):
    """Callbacks the Simulator implements."""

    def need_step(self, thread: SimThread) -> None:
        """*thread* is RUNNING with no burst in flight: feed it work."""

    def burst_complete(self, thread: SimThread) -> None:
        """*thread* finished its CPU burst: apply its pending operation."""


class SimCpu:
    """One processor of the simulated machine."""

    __slots__ = ("index", "lwp", "last_lwp_id")

    def __init__(self, index: int):
        self.index = index
        self.lwp: Optional[SimLwp] = None
        #: LWP that most recently ran here (kernel context-switch costs)
        self.last_lwp_id: Optional[int] = None

    @property
    def idle(self) -> bool:
        return self.lwp is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CPU{self.index} {'idle' if self.idle else repr(self.lwp)}>"


_STATE_TO_SEGMENT = {
    ThreadState.RUNNABLE: SegmentKind.RUNNABLE,
    ThreadState.RUNNING: SegmentKind.RUNNING,
    ThreadState.BLOCKED: SegmentKind.BLOCKED,
    ThreadState.SLEEPING: SegmentKind.SLEEPING,
}


class Scheduler:
    """Simulated two-level scheduling of threads on LWPs on CPUs."""

    def __init__(
        self,
        engine: Engine,
        config: SimConfig,
        builder: ResultBuilder,
        listener: SchedulerListener,
    ):
        self.engine = engine
        self.config = config
        self.builder = builder
        self.listener = listener
        self.dispatch_table = config.dispatch
        self.costs = config.costs

        # kernel policy: resolved from the config, hooks pre-bound as
        # instance attributes (backend-dispatched handler bindings — the
        # replay fast path's discipline applied to scheduling policy)
        backend = create_backend(config.scheduler)
        self.backend = backend
        backend.bind(self)
        self._setrun = backend.thread_setrun
        self._sched_tick = backend.sched_tick
        self._select = backend.thread_select
        self._quantum_for = backend.quantum_for
        self._quantum_expire_policy = backend.quantum_expire
        self._quantum_yield = backend.quantum_yield
        self._find_victim = backend.find_victim
        # optional usage-accounting hooks; None (the Solaris case) keeps
        # the stock placement path free of extra calls
        self._on_dispatch = getattr(backend, "on_dispatch", None)
        self._on_deschedule = getattr(backend, "on_deschedule", None)
        self._on_contention = getattr(backend, "on_contention", None)

        self.cpus: List[SimCpu] = [SimCpu(i) for i in range(config.cpus)]
        self.lwps: List[SimLwp] = []
        #: dedicated LWPs whose thread exited (kept for post-run statistics)
        self.retired_lwps: List[SimLwp] = []
        self._lwp_ids = itertools.count(1)
        self._seq = itertools.count()

        #: runnable unbound threads that have no LWP ("grey" in the graphs)
        self.user_queue = WaitQueue()
        #: idle LWPs of the unbound pool
        self._idle_pool: List[SimLwp] = []
        #: how many pool LWPs may exist; None = grow on demand
        self._pool_limit: Optional[int] = config.lwps
        self._pool_size = 0

        if config.lwps is not None:
            for _ in range(config.lwps):
                self._idle_pool.append(self._new_lwp(dedicated=False))

        # transient bookkeeping -------------------------------------------
        self._burst_events: Dict[int, Tuple[ScheduledEvent, int]] = {}
        self._quantum_events: Dict[int, Tuple[ScheduledEvent, int]] = {}
        self._running_since: Dict[int, int] = {}
        self._switch_cost_pending: Dict[int, int] = {}
        #: dispatch deferral depth: >0 while an operation is being applied
        self._atomic_depth = 0
        self._dispatch_wanted = False
        #: LWPs currently in LwpState.RUNNABLE, keyed by lwp_id and kept in
        #: became-runnable order by _set_lwp_state; _kernel_dispatch and the
        #: quantum-expiry contender check consume it directly instead of
        #: scanning every LWP (dispatch order is unaffected: the dispatch
        #: sort key (-priority, enqueue_seq) is a total order)
        self._runnable: Dict[LwpId, SimLwp] = {}

    # ------------------------------------------------------------------
    # small helpers
    # ------------------------------------------------------------------

    @property
    def now_us(self) -> int:
        return self.engine.now_us

    def _new_lwp(self, *, dedicated: bool, bound_cpu: Optional[int] = None) -> SimLwp:
        lwp = SimLwp(
            lwp_id=LwpId(next(self._lwp_ids)),
            dedicated=dedicated,
            kernel_priority=self.dispatch_table.initial_level(),
            bound_cpu=bound_cpu,
        )
        self.lwps.append(lwp)
        if not dedicated:
            self._pool_size += 1
        return lwp

    def _set_lwp_state(self, lwp: SimLwp, state: LwpState) -> None:
        """Single point for LWP state flips, keeping the runnable map."""
        old = lwp.state
        if old is not state:
            runnable = LwpState.RUNNABLE
            if old is runnable:
                del self._runnable[lwp.lwp_id]
            elif state is runnable:
                self._runnable[lwp.lwp_id] = lwp
            lwp.state = state

    @staticmethod
    def _effective_priority(lwp: SimLwp) -> int:
        """Global dispatch priority: every RT LWP outranks every TS LWP
        (the Solaris global priority ordering), fixed within its class."""
        return lwp.kernel_priority + (1_000 if lwp.rt else 0)

    def _set_thread_state(
        self, thread: SimThread, state: ThreadState, cpu: Optional[int] = None
    ) -> None:
        now = self.engine.now_us
        tid = thread.tid
        running = ThreadState.RUNNING
        if thread.state is running and state is not running:
            since = self._running_since.pop(tid, now)
            thread.cpu_time_us += now - since
        if state is running:
            self._running_since[tid] = now
        thread.state = state
        if state is ThreadState.ZOMBIE or state is ThreadState.DEAD:
            kind = None
        else:
            kind = _STATE_TO_SEGMENT[state]
        # inlined ResultBuilder.thread_condition — every state flip lands
        # here, and the extra call frame was measurable on replay profiles
        b = self.builder
        open_seg = b._open.pop(tid, None)
        if open_seg is not None:
            prev_kind, start_us, prev_cpu = open_seg
            if now > start_us:
                b._segments[tid].append(
                    ThreadSegment(tid, prev_kind, start_us, now, prev_cpu)
                )
            if prev_kind is SegmentKind.RUNNING and prev_cpu is not None:
                b._cpu_busy[prev_cpu] += now - start_us
        if kind is not None:
            b._open[tid] = (kind, now, cpu)
            if tid not in b._segments:
                b._segments[tid] = []

    # ------------------------------------------------------------------
    # atomic sections (operation application must not be preempted)
    # ------------------------------------------------------------------

    def begin_atomic(self) -> None:
        self._atomic_depth += 1

    def end_atomic(self) -> None:
        if self._atomic_depth <= 0:
            raise SimulationError("end_atomic without begin_atomic")
        self._atomic_depth -= 1
        if self._atomic_depth == 0 and self._dispatch_wanted:
            self._dispatch_wanted = False
            self._kernel_dispatch()

    # ------------------------------------------------------------------
    # thread lifecycle
    # ------------------------------------------------------------------

    def register_thread(self, thread: SimThread, *, waker_cpu: Optional[int]) -> None:
        """Admit a newly created thread (its creation cost is already paid
        by the creator).  Applies the configuration's per-thread policy
        (§3.2 manipulations), allocates a dedicated LWP for bound threads,
        and makes the thread runnable."""
        policy = self.config.policy_for(int(thread.tid))
        if policy.effective_bound() is not None:
            thread.bound = policy.effective_bound() or False
        if policy.cpu is not None:
            thread.bound_cpu = policy.cpu
            thread.bound = True
        if policy.priority is not None:
            thread.priority = policy.priority
            thread.priority_locked = True
        if policy.rt_priority is not None:
            thread.rt_priority = policy.rt_priority
            thread.bound = True  # priocntl acts on an LWP of its own
        thread.created_at_us = self.engine.now_us

        if thread.bound:
            lwp = self._new_lwp(dedicated=True, bound_cpu=thread.bound_cpu)
            if thread.rt_priority is not None:
                lwp.rt = True
                lwp.kernel_priority = thread.rt_priority
            self._set_lwp_state(lwp, LwpState.SLEEPING)  # parked until runnable
            lwp.thread = thread
            lwp.last_thread_tid = int(thread.tid)
            thread.lwp = lwp
        self.make_runnable(thread, waker_cpu=waker_cpu)

    def make_runnable(
        self,
        thread: SimThread,
        *,
        waker_cpu: Optional[int] = None,
        boost: bool = False,
    ) -> None:
        """Move *thread* to the runnable state, honouring the inter-CPU
        communication delay when the wake-up crosses processors."""
        delay = 0
        if (
            self.config.comm_delay_us > 0
            and waker_cpu is not None
            and thread.last_cpu is not None
            and thread.last_cpu != waker_cpu
        ):
            delay = self.config.comm_delay_us
        if delay:
            self.engine.schedule_in(
                delay,
                lambda: self._enqueue_runnable(thread, boost),
                f"comm-delay wake T{int(thread.tid)}",
            )
        else:
            self._enqueue_runnable(thread, boost)

    def _enqueue_runnable(self, thread: SimThread, boost: bool) -> None:
        if not thread.alive:
            raise SimulationError(f"waking dead thread T{int(thread.tid)}")
        state = thread.state
        if state is ThreadState.RUNNABLE or state is ThreadState.RUNNING:
            raise SimulationError(
                f"T{int(thread.tid)} woken while {thread.state.value}"
            )
        self._set_thread_state(thread, ThreadState.RUNNABLE)
        thread.runnable_since_us = self.engine.now_us
        thread.enqueue_seq = next(self._seq)

        if thread.bound:
            lwp = thread.lwp
            assert lwp is not None
            self._setrun(lwp, boost)
            self._lwp_runnable(lwp)
        else:
            lwp = self._grab_idle_lwp(thread)
            if lwp is not None:
                self._attach(thread, lwp, boost=boost)
            else:
                self.user_queue.push(thread)
        self._kernel_dispatch()

    def _grab_idle_lwp(self, thread: SimThread) -> Optional[SimLwp]:
        """Find or create an idle pool LWP for *thread* (prefer the LWP
        that last ran it, to skip the user-level switch cost)."""
        pool = self._idle_pool
        tid = int(thread.tid)
        for i, lwp in enumerate(pool):
            if lwp.last_thread_tid == tid:
                return pool.pop(i)
        if pool:
            return pool.pop(0)
        if self._pool_limit is None:
            return self._new_lwp(dedicated=False)
        return None

    def _attach(self, thread: SimThread, lwp: SimLwp, *, boost: bool = False) -> None:
        """Bind a runnable unbound thread to an LWP and queue the LWP."""
        lwp.thread = thread
        thread.lwp = lwp
        if lwp.last_thread_tid not in (None, int(thread.tid)):
            self._switch_cost_pending[int(thread.tid)] = self.costs.thread_switch_us
        self._setrun(lwp, boost)
        self._lwp_runnable(lwp)

    def _lwp_runnable(self, lwp: SimLwp) -> None:
        self._set_lwp_state(lwp, LwpState.RUNNABLE)
        lwp.enqueue_seq = next(self._seq)
        lwp.runnable_since_us = self.engine.now_us

    # ------------------------------------------------------------------
    # kernel-level dispatch
    # ------------------------------------------------------------------

    def _kernel_dispatch(self) -> None:
        """Match runnable LWPs to processors, preempting where the
        backend's policy demands it.  Loops until no further placement
        is possible."""
        if self._atomic_depth > 0:
            self._dispatch_wanted = True
            return
        while True:
            rmap = self._runnable
            if not rmap:
                return
            runnable = list(rmap.values())
            self._sched_tick(runnable, self.engine.now_us)
            runnable = self._select(runnable)
            placed = False
            for lwp in runnable:
                cpu = self._find_cpu_for(lwp)
                if cpu is not None:
                    self._place(lwp, cpu)
                    placed = True
                    break
            if not placed:
                if self._on_contention is not None:
                    # queued LWPs could not place: tickless backends
                    # re-tick running LWPs so a parked quantum timer
                    # cannot starve the queue (the NO_HZ re-arm)
                    self._on_contention(runnable)
                return

    def _find_cpu_for(self, lwp: SimLwp) -> Optional[SimCpu]:
        allowed = (
            [self.cpus[lwp.bound_cpu]] if lwp.bound_cpu is not None else self.cpus
        )
        for cpu in allowed:
            if cpu.idle:
                return cpu
        # no idle processor: the backend picks whose running LWP (if
        # any) this candidate displaces
        victim_cpu = self._find_victim(lwp, allowed)
        if victim_cpu is not None:
            self._preempt(victim_cpu.lwp)  # type: ignore[arg-type]
            return victim_cpu
        return None

    def _place(self, lwp: SimLwp, cpu: SimCpu) -> None:
        if not cpu.idle:
            raise SimulationError(f"placing {lwp!r} on busy {cpu!r}")
        thread = lwp.thread
        if thread is None:
            raise SimulationError(f"dispatching threadless {lwp!r}")
        if (
            self.costs.lwp_switch_us
            and cpu.last_lwp_id is not None
            and cpu.last_lwp_id != int(lwp.lwp_id)
        ):
            # §6 extension: kernel context-switch overhead (default off)
            pending = self._switch_cost_pending.get(int(thread.tid), 0)
            self._switch_cost_pending[int(thread.tid)] = (
                pending + self.costs.lwp_switch_us
            )
        cpu.lwp = lwp
        cpu.last_lwp_id = int(lwp.lwp_id)
        lwp.cpu = cpu.index
        self._set_lwp_state(lwp, LwpState.ONPROC)
        lwp.dispatches += 1
        lwp.last_thread_tid = int(thread.tid)
        if self._on_dispatch is not None:
            # usage-accounting backends stamp the dispatch (and may
            # clear quantum_remaining_us to force a fresh slice below)
            self._on_dispatch(lwp)

        self._set_thread_state(thread, ThreadState.RUNNING, cpu.index)
        thread.last_cpu = cpu.index
        if thread.start_time_us is None:
            thread.start_time_us = self.engine.now_us

        if lwp.quantum_remaining_us <= 0:
            lwp.quantum_remaining_us = self._fresh_quantum(lwp)
        if self.config.time_slicing:
            self._arm_quantum(lwp)

        if thread.burst_remaining_us > 0:
            extra = self._switch_cost_pending.pop(int(thread.tid), 0)
            self._arm_burst(thread, thread.burst_remaining_us + extra)
        else:
            self.listener.need_step(thread)

    def _fresh_quantum(self, lwp: SimLwp) -> int:
        return self._quantum_for(lwp)

    def _off_cpu(self, lwp: SimLwp) -> None:
        """Single point where an LWP leaves its processor (accounting
        hook for usage-driven backends)."""
        if self._on_deschedule is not None:
            self._on_deschedule(lwp)
        self.cpus[lwp.cpu].lwp = None  # type: ignore[index]
        lwp.cpu = None

    def _preempt(self, lwp: SimLwp) -> None:
        """Take a running LWP (and its thread) off its CPU, preserving the
        thread's burst remainder and the LWP's quantum remainder."""
        if lwp.state is not LwpState.ONPROC or lwp.cpu is None:
            raise SimulationError(f"preempting non-running {lwp!r}")
        thread = lwp.thread
        assert thread is not None
        self._save_burst_remainder(thread)
        self._save_quantum_remainder(lwp)
        self._off_cpu(lwp)
        self._set_thread_state(thread, ThreadState.RUNNABLE)
        thread.runnable_since_us = self.engine.now_us
        self._lwp_runnable(lwp)

    def _save_burst_remainder(self, thread: SimThread) -> None:
        entry = self._burst_events.pop(int(thread.tid), None)
        if entry is None:
            if thread.state is ThreadState.RUNNING and self._atomic_depth == 0:
                raise SimulationError(
                    f"RUNNING T{int(thread.tid)} has no burst event"
                )
            thread.burst_remaining_us = 0
            return
        handle, end_us = entry
        handle.cancel()
        thread.burst_remaining_us = end_us - self.engine.now_us

    def _save_quantum_remainder(self, lwp: SimLwp) -> None:
        entry = self._quantum_events.pop(int(lwp.lwp_id), None)
        if entry is None:
            return
        handle, expiry_us = entry
        handle.cancel()
        lwp.quantum_remaining_us = max(0, expiry_us - self.engine.now_us)

    # ------------------------------------------------------------------
    # quanta
    # ------------------------------------------------------------------

    def _arm_quantum(self, lwp: SimLwp) -> None:
        # hot under replay: one cached closure per LWP, constant label, a
        # direct queue push (expiry is never in the past), and the
        # ScheduledEvent recycled while its last occurrence executed
        action = lwp.quantum_action
        if action is None:
            expired = self._quantum_expired
            def action(l=lwp, fire=expired):
                fire(l)
            lwp.quantum_action = action
        expiry = self.engine.now_us + lwp.quantum_remaining_us
        handle = lwp.quantum_event
        if handle is None or handle.cancelled:
            handle = self.engine.queue.push(expiry, action, "quantum")
            lwp.quantum_event = handle
        else:
            self.engine.queue.repush(expiry, handle)
        self._quantum_events[int(lwp.lwp_id)] = (handle, expiry)

    def retick(self, lwp: SimLwp, remaining_us: int) -> None:
        """Pull a running LWP's armed quantum expiry forward to at most
        *remaining_us* from now (never pushes it later).  No-op when no
        timer is armed (``time_slicing=False``) or the timer already
        fires sooner.  Backends call this from ``on_contention`` to end
        a tickless stretch."""
        entry = self._quantum_events.get(int(lwp.lwp_id))
        if entry is None:
            return
        handle, expiry_us = entry
        if expiry_us <= self.engine.now_us + remaining_us:
            return
        # the armed event is still in the heap, so it cannot be
        # repushed in place — cancel it and let _arm_quantum allocate
        handle.cancel()
        lwp.quantum_remaining_us = remaining_us
        self._arm_quantum(lwp)

    def _quantum_expired(self, lwp: SimLwp) -> None:
        self._quantum_events.pop(int(lwp.lwp_id), None)
        if lwp.state is not LwpState.ONPROC:
            return  # stale timer (LWP left the CPU at the same timestamp)
        lwp.quantum_expiries += 1
        self._quantum_expire_policy(lwp)  # aging / usage accounting
        lwp.quantum_remaining_us = self._quantum_for(lwp)
        if self._quantum_yield(lwp):
            self._preempt(lwp)
            self._kernel_dispatch()
        else:
            self._arm_quantum(lwp)

    # ------------------------------------------------------------------
    # bursts
    # ------------------------------------------------------------------

    def begin_burst(self, thread: SimThread, duration_us: int) -> None:
        """Start *duration_us* of CPU work for a RUNNING thread."""
        if thread.state is not ThreadState.RUNNING:
            raise SimulationError(
                f"begin_burst on {thread.state.value} T{int(thread.tid)}"
            )
        if duration_us < 0:
            raise SimulationError(f"negative burst {duration_us}")
        duration_us += self._switch_cost_pending.pop(int(thread.tid), 0)
        thread.burst_remaining_us = duration_us
        self._arm_burst(thread, duration_us)

    def _arm_burst(self, thread: SimThread, duration_us: int) -> None:
        end = self.engine.now_us + duration_us
        handle = self.engine.schedule_at(
            end, lambda: self._burst_done(thread), f"burst T{int(thread.tid)}"
        )
        self._burst_events[int(thread.tid)] = (handle, end)

    def _burst_done(self, thread: SimThread) -> None:
        self._burst_events.pop(int(thread.tid), None)
        thread.burst_remaining_us = 0
        if thread.state is not ThreadState.RUNNING:
            raise SimulationError(
                f"burst completion for non-running T{int(thread.tid)}"
            )
        self.listener.burst_complete(thread)

    def begin_burst_fast(self, thread: SimThread, duration_us: int) -> None:
        """:meth:`begin_burst` for the replay fast path: same semantics and
        trip points, but the completion closure is built once per thread
        (``thread.burst_action``, with :meth:`_burst_done`'s bookkeeping
        fused in), the label is constant, and the event is pushed straight
        onto the queue (the end time can never be in the past, so the
        ``schedule_at`` guard is redundant).  Durations are ``work + cost``
        of a compiled step, hence never negative."""
        if thread.state is not ThreadState.RUNNING:
            raise SimulationError(
                f"begin_burst on {thread.state.value} T{int(thread.tid)}"
            )
        tid = int(thread.tid)
        pending = self._switch_cost_pending
        if pending:
            duration_us += pending.pop(tid, 0)
        thread.burst_remaining_us = duration_us
        action = thread.burst_action
        if action is None:
            # normally pre-built (fused with the interpreter dispatch) by
            # Simulator._attach_fast; this fallback fuses _burst_done only
            def action(
                t=thread,
                t_id=tid,
                events=self._burst_events,
                complete=self.listener.burst_complete,
                running=ThreadState.RUNNING,
            ):
                events.pop(t_id, None)
                t.burst_remaining_us = 0
                if t.state is not running:
                    raise SimulationError(
                        f"burst completion for non-running T{t_id}"
                    )
                complete(t)
            thread.burst_action = action
        engine = self.engine
        end = engine.now_us + duration_us
        ev = thread.burst_event
        if ev is None or ev.cancelled:
            ev = engine.queue.push(end, action, "burst")
            thread.burst_event = ev
        else:
            engine.queue.repush(end, ev)
        self._burst_events[tid] = (ev, end)

    # ------------------------------------------------------------------
    # blocking / waking / exiting / yielding (called during op application)
    # ------------------------------------------------------------------

    def block_current(self, thread: SimThread, *, sleeping: bool = False) -> None:
        """The running thread blocks at a synchronisation point."""
        if thread.state is not ThreadState.RUNNING:
            raise SimulationError(
                f"block_current on {thread.state.value} T{int(thread.tid)}"
            )
        state = ThreadState.SLEEPING if sleeping else ThreadState.BLOCKED
        self._set_thread_state(thread, state)
        self._release_lwp_of(thread)

    def thread_exited(self, thread: SimThread) -> None:
        """The running thread executed ``thr_exit``."""
        if thread.state is not ThreadState.RUNNING:
            raise SimulationError(
                f"thread_exited on {thread.state.value} T{int(thread.tid)}"
            )
        thread.end_time_us = self.engine.now_us
        self._set_thread_state(thread, ThreadState.ZOMBIE)
        self._release_lwp_of(thread, exiting=True)

    def yield_current(self, thread: SimThread) -> None:
        """``thr_yield``: surrender the LWP to an equal-or-higher priority
        runnable thread; reacquire immediately when none exists."""
        if thread.state is not ThreadState.RUNNING:
            raise SimulationError(
                f"yield_current on {thread.state.value} T{int(thread.tid)}"
            )
        lwp = thread.lwp
        assert lwp is not None
        if thread.bound:
            # a bound thread yields its LWP's processor slot
            self._preempt(lwp)
            self._kernel_dispatch()
            return
        self._set_thread_state(thread, ThreadState.RUNNABLE)
        thread.runnable_since_us = self.engine.now_us
        thread.enqueue_seq = next(self._seq)
        self._save_quantum_remainder(lwp)
        lwp.thread = None
        thread.lwp = None
        self.user_queue.push(thread)
        nxt = self.user_queue.pop()
        self._switch_to_on_lwp(nxt, lwp)

    def sleep_current(self, thread: SimThread, duration_us: int) -> None:
        """Pure delay: the thread sleeps without consuming CPU (used for
        replayed timed-out waits)."""
        self.block_current(thread, sleeping=True)
        self.engine.schedule_in(
            duration_us,
            lambda: self.make_runnable(thread, boost=True),
            f"sleep T{int(thread.tid)}",
        )

    def _release_lwp_of(self, thread: SimThread, *, exiting: bool = False) -> None:
        """The thread left the RUNNING state: deal with its LWP and CPU."""
        lwp = thread.lwp
        if lwp is None:
            raise SimulationError(f"T{int(thread.tid)} has no LWP to release")
        self._save_quantum_remainder(lwp)

        if thread.bound and not exiting:
            # dedicated LWP sleeps with its thread
            if lwp.cpu is not None:
                self._off_cpu(lwp)
            self._set_lwp_state(lwp, LwpState.SLEEPING)
            self._kernel_dispatch()
            return

        # detach the thread from the LWP
        lwp.thread = None
        lwp.last_thread_tid = int(thread.tid)
        thread.lwp = None
        if thread.bound and exiting:
            # dedicated LWP dies with its thread
            if lwp.cpu is not None:
                self._off_cpu(lwp)
            self._set_lwp_state(lwp, LwpState.IDLE)
            self.lwps.remove(lwp)
            self.retired_lwps.append(lwp)
            self._kernel_dispatch()
            return

        # pool LWP: pick the next runnable unbound thread, or park
        if self.user_queue:
            nxt = self.user_queue.pop()
            self._switch_to_on_lwp(nxt, lwp)
        else:
            if lwp.cpu is not None:
                self._off_cpu(lwp)
            self._set_lwp_state(lwp, LwpState.IDLE)
            self._idle_pool.append(lwp)
            self._kernel_dispatch()

    def _switch_to_on_lwp(self, thread: SimThread, lwp: SimLwp) -> None:
        """User-level context switch: *lwp* (possibly still on its CPU)
        picks up runnable *thread*."""
        lwp.thread = thread
        thread.lwp = lwp
        if lwp.last_thread_tid not in (None, int(thread.tid)):
            self._switch_cost_pending[int(thread.tid)] = self.costs.thread_switch_us
        if lwp.state is LwpState.ONPROC and lwp.cpu is not None:
            # stays on processor; the thread starts running immediately
            lwp.last_thread_tid = int(thread.tid)
            self._set_thread_state(thread, ThreadState.RUNNING, lwp.cpu)
            thread.last_cpu = lwp.cpu
            if thread.start_time_us is None:
                thread.start_time_us = self.engine.now_us
            if lwp.quantum_remaining_us <= 0:
                lwp.quantum_remaining_us = self._fresh_quantum(lwp)
            if self.config.time_slicing:
                self._arm_quantum(lwp)
            if thread.burst_remaining_us > 0:
                extra = self._switch_cost_pending.pop(int(thread.tid), 0)
                self._arm_burst(thread, thread.burst_remaining_us + extra)
            else:
                self.listener.need_step(thread)
        else:
            self._lwp_runnable(lwp)
            self._kernel_dispatch()

    # ------------------------------------------------------------------
    # concurrency control (thr_setconcurrency)
    # ------------------------------------------------------------------

    def set_concurrency(self, level: int) -> bool:
        """Apply ``thr_setconcurrency``.

        Honoured only when the user did not fix the LWP count in the
        configuration (§3.2: with a user-specified LWP count "the
        thr_setconcurrency in the program has no effect").  In on-demand
        mode the pool already grows as needed, so this pre-creates idle
        LWPs up to *level* and reports True.
        """
        if self.config.lwps is not None:
            return False
        while self._pool_size < level:
            self._idle_pool.append(self._new_lwp(dedicated=False))
        return True

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def idle_cpu_count(self) -> int:
        return sum(1 for cpu in self.cpus if cpu.idle)

    def running_threads(self) -> List[SimThread]:
        return [
            cpu.lwp.thread
            for cpu in self.cpus
            if cpu.lwp is not None and cpu.lwp.thread is not None
        ]
