"""Simulated Solaris synchronisation objects.

These classes implement the *semantics* of the thread-library objects the
Simulator models: mutexes, counting semaphores, condition variables and
readers/writer locks.  They do not know about CPUs or LWPs; they interact
with the scheduling machinery through the narrow :class:`KernelAPI`
facade (block me / wake him / arm a timer), which the Simulator provides.

Two behaviours specific to the paper live here:

* **direct hand-off** — when an object is released to a waiter, ownership
  transfers at release time (the waiter wakes already holding it), which is
  how ``libthread`` queues behave and what makes replay deterministic;
* **barrier-style broadcast** (§6) — in replay mode ``cond_broadcast``
  carries the number of threads it released in the log, and the
  broadcasting thread blocks until that many waiters have arrived, so "the
  last thread arriving at the barrier releases all the waiting threads".

Waiter queues are ordered by user-thread priority (higher first), FIFO
within a priority, matching Solaris sleep-queue policy.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, List, Optional, Protocol, Tuple

from repro.core.errors import ReplayDivergenceError, SimulationError
from repro.core.ids import SyncObjectId
from repro.solaris.thread_model import SimThread

__all__ = [
    "NO_RESULT",
    "KernelAPI",
    "WaitQueue",
    "SimMutex",
    "SimSemaphore",
    "SimCondVar",
    "SimRwLock",
    "SyncObjectTable",
]


#: Sentinel: "wake without changing the thread's pending result".  A timed
#: wait records its outcome *before* queuing on the mutex; the later mutex
#: hand-off wakes the thread with NO_RESULT so the outcome survives.
NO_RESULT = object()


class KernelAPI(Protocol):
    """What synchronisation objects need from the scheduling machinery."""

    @property
    def now_us(self) -> int:  # pragma: no cover - protocol
        ...

    def block(self, thread: SimThread, reason: str) -> None:
        """Take the (currently running) thread off its processor."""

    def wake(self, thread: SimThread, result: object = NO_RESULT) -> None:
        """Make a blocked thread runnable; ``result`` (when given) is
        delivered to its behaviour when it resumes (e.g. the outcome of a
        timed wait)."""

    def post_result(self, thread: SimThread, result: object) -> None:
        """Record *result* for a still-blocked thread (delivered when it
        eventually resumes) without waking it."""

    def arm_timer(self, delay_us: int, action: Callable[[], None], label: str) -> object:
        """Schedule *action* after *delay_us*; returns a cancellable handle."""

    def cancel_timer(self, handle: object) -> None:
        ...


class WaitQueue:
    """Priority-ordered (then FIFO) queue of blocked threads.

    Backed by a binary heap of ``(-priority, seq, thread)`` tuples: the
    ``seq`` tie-break is unique per queue, so heap order never compares
    threads and pop order is exactly the old min-scan's.  This doubles as
    the scheduler's user-level run queue, which makes ``pop`` hot under
    replay.
    """

    __slots__ = ("_items", "_seq")

    def __init__(self) -> None:
        self._items: List[Tuple[int, int, SimThread]] = []
        self._seq = itertools.count()

    def push(self, thread: SimThread) -> None:
        heapq.heappush(self._items, (-thread.priority, next(self._seq), thread))

    def pop(self) -> SimThread:
        if not self._items:
            raise SimulationError("pop from empty wait queue")
        return heapq.heappop(self._items)[2]

    def remove(self, thread: SimThread) -> bool:
        for i, (_, _, t) in enumerate(self._items):
            if t is thread:
                del self._items[i]
                heapq.heapify(self._items)
                return True
        return False

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def threads(self) -> List[SimThread]:
        return [t for _, _, t in sorted(self._items, key=lambda x: x[:2])]


class SimMutex:
    """A Solaris mutex with direct hand-off to the next waiter."""

    __slots__ = (
        "oid", "owner", "waiters", "acquired_seq",
        "acquisitions", "contended_acquisitions",
    )

    #: global acquisition stamp so "most recently acquired" is well defined
    _acquire_clock = itertools.count()

    def __init__(self, oid: SyncObjectId):
        self.oid = oid
        self.owner: Optional[SimThread] = None
        self.waiters = WaitQueue()
        #: stamp of the current owner's acquisition (see _acquire_clock)
        self.acquired_seq = -1
        # contention statistics (used by analysis and tests)
        self.acquisitions = 0
        self.contended_acquisitions = 0

    def _set_owner(self, thread: SimThread) -> None:
        self.owner = thread
        self.acquired_seq = next(SimMutex._acquire_clock)
        self.acquisitions += 1

    def lock(self, thread: SimThread, kernel: KernelAPI) -> bool:
        """Acquire or block.  Returns True when acquired immediately."""
        if self.owner is None:
            # _set_owner inlined: uncontended acquire is replay-hot
            self.owner = thread
            self.acquired_seq = next(SimMutex._acquire_clock)
            self.acquisitions += 1
            return True
        if self.owner is thread:
            raise ReplayDivergenceError(
                f"T{int(thread.tid)} self-deadlock on {self.oid}",
                tid=int(thread.tid),
            )
        self.waiters.push(thread)
        self.contended_acquisitions += 1
        kernel.block(thread, f"mutex {self.oid.name}")
        return False

    def trylock(self, thread: SimThread) -> bool:
        """Non-blocking acquire attempt."""
        if self.owner is None:
            self._set_owner(thread)
            return True
        return False

    def enqueue_blocked(self, thread: SimThread) -> bool:
        """Acquire on behalf of an *already blocked* thread (a condition
        waiter re-acquiring after signal).  Returns True when the mutex was
        free and the thread now owns it (the caller must wake it)."""
        if self.owner is None:
            self._set_owner(thread)
            return True
        self.waiters.push(thread)
        self.contended_acquisitions += 1
        return False

    def unlock(self, thread: SimThread, kernel: KernelAPI) -> None:
        if self.owner is not thread:
            holder = f"T{int(self.owner.tid)}" if self.owner else "nobody"
            raise ReplayDivergenceError(
                f"T{int(thread.tid)} unlocks {self.oid} held by {holder}",
                tid=int(thread.tid),
            )
        waiters = self.waiters
        if waiters:
            heir = waiters.pop()
            self._set_owner(heir)
            kernel.wake(heir)
        else:
            # uncontended release is replay-hot
            self.owner = None
            self.acquired_seq = -1


class SimSemaphore:
    """A counting semaphore; posts hand tokens directly to waiters."""

    __slots__ = ("oid", "count", "waiters")

    def __init__(self, oid: SyncObjectId, initial: int = 0):
        if initial < 0:
            raise SimulationError(f"negative initial count for {oid}")
        self.oid = oid
        self.count = initial
        self.waiters = WaitQueue()

    def wait(self, thread: SimThread, kernel: KernelAPI) -> bool:
        """P operation.  Returns True when a token was taken immediately."""
        if self.count > 0:
            self.count -= 1
            return True
        self.waiters.push(thread)
        kernel.block(thread, f"sema {self.oid.name}")
        return False

    def trywait(self, thread: SimThread) -> bool:
        if self.count > 0:
            self.count -= 1
            return True
        return False

    def post(self, kernel: KernelAPI) -> None:
        """V operation.  A waiter (if any) receives the token directly."""
        if self.waiters:
            kernel.wake(self.waiters.pop())
        else:
            self.count += 1


class SimCondVar:
    """A Solaris condition variable, with the §6 barrier replay rule.

    Waiters release their mutex before sleeping and re-acquire it before
    the wait completes.  ``broadcast(expected_waiters=n)`` implements the
    replay heuristic: the broadcaster blocks until *n* waiters are present,
    then releases them all.
    """

    __slots__ = ("oid", "waiters", "_wait_info", "_pending_broadcast")

    def __init__(self, oid: SyncObjectId):
        self.oid = oid
        self.waiters = WaitQueue()
        #: mutex each waiter must re-acquire on wake, plus its timer handle.
        self._wait_info: Dict[int, Tuple[Optional[SimMutex], Optional[object]]] = {}
        #: a blocked broadcaster waiting for its §6 quota of waiters, plus
        #: the mutex it released while blocking (re-acquired on release).
        self._pending_broadcast: Optional[Tuple[SimThread, int, Optional[SimMutex]]] = None

    # ------------------------------------------------------------------

    def wait(
        self,
        thread: SimThread,
        mutex: Optional[SimMutex],
        kernel: KernelAPI,
        *,
        timeout_us: Optional[int] = None,
        on_timeout: Optional[Callable[[SimThread], None]] = None,
    ) -> None:
        """Block the caller; releases *mutex* atomically first.

        The caller always blocks (there is no fast path for condition
        waits).  With ``timeout_us`` set, *on_timeout* fires if no signal
        arrives in time — the simulator routes that back through
        :meth:`cancel_wait` plus the mutex re-acquire path.
        """
        if mutex is not None:
            mutex.unlock(thread, kernel)
        timer = None
        if timeout_us is not None:
            if on_timeout is None:
                raise SimulationError("timeout without on_timeout handler")
            timer = kernel.arm_timer(
                timeout_us,
                lambda t=thread: on_timeout(t),
                f"cond_timedwait {self.oid.name} T{int(thread.tid)}",
            )
        self.waiters.push(thread)
        self._wait_info[int(thread.tid)] = (mutex, timer)
        kernel.block(thread, f"cond {self.oid.name}")
        self._check_pending_broadcast(kernel)

    def _release_one(self, thread: SimThread, kernel: KernelAPI, result: object) -> None:
        """Move one waiter from the condition to its mutex (or wake it)."""
        mutex, timer = self._wait_info.pop(int(thread.tid))
        if timer is not None:
            kernel.cancel_timer(timer)
        if mutex is None:
            kernel.wake(thread, result)
        elif mutex.enqueue_blocked(thread):
            kernel.wake(thread, result)
        else:
            # The thread now queues on the mutex and wakes at hand-off
            # time; park the wait's outcome so it is delivered then.
            kernel.post_result(thread, result)

    def signal(self, kernel: KernelAPI) -> int:
        """Wake at most one waiter.  Returns the number woken (0 or 1)."""
        if not self.waiters:
            return 0
        self._release_one(self.waiters.pop(), kernel, True)
        return 1

    def broadcast(
        self,
        thread: SimThread,
        kernel: KernelAPI,
        *,
        expected_waiters: Optional[int] = None,
        held_mutex: Optional["SimMutex"] = None,
    ) -> bool:
        """Wake all waiters.

        Live mode (``expected_waiters is None``): wakes whoever is waiting
        right now; returns True (the broadcaster continues).

        Replay mode: if fewer than ``expected_waiters`` threads are
        waiting, the broadcaster blocks (§6) and this returns False; the
        arrival of the last waiter triggers the release and wakes the
        broadcaster.  While blocked the broadcaster releases *held_mutex*
        (a barrier broadcast happens inside the barrier's critical
        section; holding on to the mutex would deadlock the very waiters
        it is waiting for) and re-acquires it before resuming, exactly
        like a condition waiter.
        """
        if expected_waiters is None:
            for waiter in self.waiters.threads():
                self.waiters.remove(waiter)
                self._release_one(waiter, kernel, True)
            return True
        if len(self.waiters) >= expected_waiters:
            self._release_all(kernel)
            return True
        if self._pending_broadcast is not None:
            raise SimulationError(
                f"two pending broadcasts on {self.oid} — replay diverged"
            )
        if held_mutex is not None:
            held_mutex.unlock(thread, kernel)
        self._pending_broadcast = (thread, expected_waiters, held_mutex)
        kernel.block(thread, f"cond-broadcast {self.oid.name}")
        return False

    def _release_all(self, kernel: KernelAPI) -> None:
        for waiter in self.waiters.threads():
            self.waiters.remove(waiter)
            self._release_one(waiter, kernel, True)

    def _check_pending_broadcast(self, kernel: KernelAPI) -> None:
        if self._pending_broadcast is None:
            return
        broadcaster, expected, held_mutex = self._pending_broadcast
        if len(self.waiters) >= expected:
            self._pending_broadcast = None
            # the broadcaster re-acquires its mutex *before* the waiters
            # contend for it — it still has the critical section's unlock
            # to execute, exactly like the last-arriving thread in the
            # recorded run
            if held_mutex is None or held_mutex.enqueue_blocked(broadcaster):
                kernel.wake(broadcaster)
            self._release_all(kernel)

    def cancel_wait(self, thread: SimThread, kernel: KernelAPI) -> Optional[SimMutex]:
        """Timed wait expired: remove *thread* from the waiters and return
        the mutex it must re-acquire (None if it waited without one)."""
        if not self.waiters.remove(thread):
            raise SimulationError(
                f"timeout for T{int(thread.tid)} not waiting on {self.oid}"
            )
        mutex, _timer = self._wait_info.pop(int(thread.tid))
        return mutex


class SimRwLock:
    """A readers/writer lock with writer preference (Solaris policy)."""

    __slots__ = ("oid", "readers", "writer", "_queue")

    def __init__(self, oid: SyncObjectId):
        self.oid = oid
        self.readers: List[SimThread] = []
        self.writer: Optional[SimThread] = None
        # queue of (is_write, thread), FIFO with writer preference on grant
        self._queue: List[Tuple[bool, SimThread]] = []

    # ------------------------------------------------------------------

    def _waiting_writer(self) -> bool:
        return any(is_w for is_w, _ in self._queue)

    def rdlock(self, thread: SimThread, kernel: KernelAPI) -> bool:
        if self.writer is None and not self._waiting_writer():
            self.readers.append(thread)
            return True
        self._queue.append((False, thread))
        kernel.block(thread, f"rwlock-rd {self.oid.name}")
        return False

    def wrlock(self, thread: SimThread, kernel: KernelAPI) -> bool:
        if self.writer is None and not self.readers:
            self.writer = thread
            return True
        self._queue.append((True, thread))
        kernel.block(thread, f"rwlock-wr {self.oid.name}")
        return False

    def tryrdlock(self, thread: SimThread) -> bool:
        if self.writer is None and not self._waiting_writer():
            self.readers.append(thread)
            return True
        return False

    def trywrlock(self, thread: SimThread) -> bool:
        if self.writer is None and not self.readers:
            self.writer = thread
            return True
        return False

    def unlock(self, thread: SimThread, kernel: KernelAPI) -> None:
        if self.writer is thread:
            self.writer = None
        elif thread in self.readers:
            self.readers.remove(thread)
        else:
            raise ReplayDivergenceError(
                f"T{int(thread.tid)} unlocks {self.oid} it does not hold",
                tid=int(thread.tid),
            )
        self._grant(kernel)

    def _grant(self, kernel: KernelAPI) -> None:
        if self.writer is not None or not self._queue:
            return
        is_write, head = self._queue[0]
        if is_write:
            if not self.readers:
                self._queue.pop(0)
                self.writer = head
                kernel.wake(head)
        else:
            # admit the leading run of readers
            while self._queue and not self._queue[0][0]:
                _, reader = self._queue.pop(0)
                self.readers.append(reader)
                kernel.wake(reader)


class SyncObjectTable:
    """Lazy registry of simulated synchronisation objects by id.

    The accessors are on the replay hot path (one lookup per sync op), so
    each does a single ``dict.get`` instead of a membership test plus a
    second lookup.
    """

    __slots__ = ("_mutexes", "_semas", "_conds", "_rwlocks")

    def __init__(self) -> None:
        self._mutexes: Dict[str, SimMutex] = {}
        self._semas: Dict[str, SimSemaphore] = {}
        self._conds: Dict[str, SimCondVar] = {}
        self._rwlocks: Dict[str, SimRwLock] = {}

    def mutex(self, name: str) -> SimMutex:
        obj = self._mutexes.get(name)
        if obj is None:
            obj = self._mutexes[name] = SimMutex(SyncObjectId("mutex", name))
        return obj

    def sema(self, name: str, initial: int = 0) -> SimSemaphore:
        obj = self._semas.get(name)
        if obj is None:
            obj = self._semas[name] = SimSemaphore(SyncObjectId("sema", name), initial)
        return obj

    def cond(self, name: str) -> SimCondVar:
        obj = self._conds.get(name)
        if obj is None:
            obj = self._conds[name] = SimCondVar(SyncObjectId("cond", name))
        return obj

    def rwlock(self, name: str) -> SimRwLock:
        obj = self._rwlocks.get(name)
        if obj is None:
            obj = self._rwlocks[name] = SimRwLock(SyncObjectId("rwlock", name))
        return obj

    def all_mutexes(self) -> Dict[str, SimMutex]:
        return dict(self._mutexes)
