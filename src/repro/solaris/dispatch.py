"""Solaris time-sharing (TS) class dispatch table.

"Not only user-level threads has a priority level, but also the LWPs.  The
priority of an LWP is set by the operating system and is adjusted during
run-time ...  The length of a time slice for an LWP is related to the
priority level, thus we also adjust the time slice length during our
simulation."  (§3.2)

This module models the Solaris 2.5 TS dispatcher parameter table
(``ts_dptbl``).  Each of the 60 priority levels (0 = worst, 59 = best)
carries:

``quantum``   — the time slice granted at this level (lower priority ⇒
longer slice: 200 ms at level 0 down to 20 ms at 59, the classic default);
``tqexp``     — the level an LWP drops to when it uses up its quantum;
``slpret``    — the (boosted) level an LWP gets when it returns from sleep;
``maxwait``   — seconds an LWP may starve on the run queue before being
lifted to ``lwait``.

The concrete numbers follow the shape of the stock Solaris table; the exact
stock values differ slightly between releases, so the table here is
generated from the canonical rules and can be replaced wholesale via
:meth:`DispatchTable.custom`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.timebase import US_PER_MS, US_PER_SECOND

__all__ = ["DispatchEntry", "DispatchTable", "TS_LEVELS"]

#: Number of TS-class priority levels (0..59).
TS_LEVELS = 60


@dataclass(frozen=True, slots=True)
class DispatchEntry:
    """One row of the dispatch table (all times in µs)."""

    quantum_us: int
    tqexp: int
    slpret: int
    maxwait_us: int
    lwait: int

    def __post_init__(self) -> None:
        if self.quantum_us <= 0:
            raise ValueError("quantum must be positive")
        for name in ("tqexp", "slpret", "lwait"):
            level = getattr(self, name)
            if not 0 <= level < TS_LEVELS:
                raise ValueError(f"{name} out of range: {level}")


class DispatchTable:
    """The TS dispatch table plus the priority-adjustment rules.

    Use :meth:`classic` for the Solaris-2.5-shaped default, or
    :meth:`custom` to supply explicit rows (ablation experiments).
    """

    def __init__(self, entries: Sequence[DispatchEntry]):
        if len(entries) != TS_LEVELS:
            raise ValueError(f"dispatch table needs {TS_LEVELS} rows, got {len(entries)}")
        self._entries: List[DispatchEntry] = list(entries)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def classic(cls) -> "DispatchTable":
        """The classic Solaris TS table shape.

        Quanta descend in 40 ms steps per decade of priority: levels 0-9
        get 200 ms, 10-19 get 160 ms, ..., 50-59 get 20 ms.  Quantum expiry
        drops an LWP ten levels (floored at 0); sleep return boosts it into
        the upper half (level+10, capped at 59); an LWP that has waited a
        second without running is lifted the same way.
        """
        entries = []
        for level in range(TS_LEVELS):
            decade = level // 10
            quantum_ms = max(20, 200 - 40 * decade)
            entries.append(
                DispatchEntry(
                    quantum_us=quantum_ms * US_PER_MS,
                    tqexp=max(0, level - 10),
                    slpret=min(TS_LEVELS - 1, level + 10),
                    maxwait_us=US_PER_SECOND,
                    lwait=min(TS_LEVELS - 1, level + 10),
                )
            )
        return cls(entries)

    @classmethod
    def fixed_quantum(cls, quantum_us: int) -> "DispatchTable":
        """Degenerate table: every level gets the same quantum and no
        priority adjustment.  Handy for unit tests and round-robin
        ablations."""
        entries = [
            DispatchEntry(
                quantum_us=quantum_us,
                tqexp=level,
                slpret=level,
                maxwait_us=US_PER_SECOND,
                lwait=level,
            )
            for level in range(TS_LEVELS)
        ]
        return cls(entries)

    @classmethod
    def custom(cls, entries: Sequence[DispatchEntry]) -> "DispatchTable":
        return cls(entries)

    # ------------------------------------------------------------------
    # lookups / rules
    # ------------------------------------------------------------------

    def entry(self, level: int) -> DispatchEntry:
        return self._entries[self._clamp(level)]

    def entries(self) -> Sequence[DispatchEntry]:
        """All rows, level 0 first (read-only view for serialisation)."""
        return tuple(self._entries)

    def quantum_us(self, level: int) -> int:
        """Time slice for an LWP running at *level*."""
        return self.entry(level).quantum_us

    def after_quantum_expiry(self, level: int) -> int:
        """New priority after the LWP used up its whole quantum (CPU hog
        penalty — it sinks towards the long-quantum levels)."""
        return self.entry(level).tqexp

    def after_sleep(self, level: int) -> int:
        """New priority when an LWP wakes from sleep (interactivity boost)."""
        return self.entry(level).slpret

    def after_starvation(self, level: int) -> int:
        """New priority when the LWP starved past ``maxwait`` on the queue."""
        return self.entry(level).lwait

    def maxwait_us(self, level: int) -> int:
        return self.entry(level).maxwait_us

    @staticmethod
    def _clamp(level: int) -> int:
        return max(0, min(TS_LEVELS - 1, level))

    @staticmethod
    def initial_level() -> int:
        """Starting TS priority for a new LWP (mid-table, like ts_upri 0)."""
        return 29
