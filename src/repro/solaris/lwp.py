"""Lightweight process (LWP) model.

"Between the user-level and kernel threads are LWPs.  Each Solaris process
contains at least one LWP. ... There is a kernel thread for each LWP.
Kernel threads are the only objects scheduled by the operating system."
(§3.2)

A :class:`SimLwp` is the schedulable kernel entity: it carries the TS-class
kernel priority and quantum accounting, and at any instant runs at most one
user-level thread.  Dedicated LWPs serve bound threads; the rest form the
pool unbound threads multiplex onto.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.core.ids import LwpId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.solaris.thread_model import SimThread

__all__ = ["LwpState", "SimLwp"]


class LwpState(enum.Enum):
    """Kernel scheduling state of an LWP."""

    IDLE = "idle"  # in the pool, no user thread attached
    RUNNABLE = "runnable"  # has a thread, waiting for a CPU
    ONPROC = "onproc"  # executing on a CPU
    SLEEPING = "sleeping"  # its thread is blocked/sleeping (bound case) or parked


@dataclass(slots=True)
class SimLwp:
    """A simulated LWP / kernel thread pair.

    Attributes
    ----------
    lwp_id:
        Small integer id.
    dedicated:
        True when this LWP exists solely to serve one bound thread.
    kernel_priority:
        Current TS-class level (0..59); adjusted by the dispatcher on
        quantum expiry and sleep return, exactly as §3.2 describes.
    quantum_remaining_us:
        What is left of the current time slice.
    bound_cpu:
        CPU this LWP must run on (propagated from a CPU-bound thread).
    """

    lwp_id: LwpId
    dedicated: bool = False
    kernel_priority: int = 29
    #: real-time class member: fixed priority above every TS LWP, never
    #: aged, round-robin on the RT quantum
    rt: bool = False
    quantum_remaining_us: int = 0
    bound_cpu: Optional[int] = None

    state: LwpState = LwpState.IDLE
    thread: Optional["SimThread"] = None
    cpu: Optional[int] = None

    #: The user thread this LWP most recently ran; switching to a different
    #: one costs a user-level context switch (CostModel.thread_switch_us).
    last_thread_tid: Optional[int] = None

    #: FIFO tie-break for kernel run queues.
    enqueue_seq: int = 0

    #: When the LWP last joined the kernel run queue (starvation boosts).
    runnable_since_us: int = 0

    # --- accounting ---------------------------------------------------
    cpu_time_us: int = 0
    dispatches: int = 0
    quantum_expiries: int = 0

    #: Quantum-expiry closure cached by the scheduler (built once per LWP
    #: instead of one lambda per arm).
    quantum_action: Optional[Callable[[], None]] = field(
        default=None, repr=False, compare=False
    )

    #: Spare quantum ScheduledEvent recycled across arms (reused while its
    #: previous occurrence executed; replaced when cancelled).
    quantum_event: Optional[object] = field(default=None, repr=False, compare=False)

    @property
    def busy(self) -> bool:
        return self.thread is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        who = f"T{int(self.thread.tid)}" if self.thread else "-"
        return (
            f"<LWP{int(self.lwp_id)} {self.state.value} pri={self.kernel_priority} "
            f"thr={who} cpu={self.cpu}>"
        )
