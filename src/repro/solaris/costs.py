"""Synchronisation and thread-management cost model.

The paper (§3.2, citing SunSoft's measurements in [17]) fixes two relative
costs the Simulator must honour:

* creating a **bound** thread takes **6.7×** longer than an unbound one, and
* synchronising on a semaphore takes **5.9×** longer with bound threads —
  "this value is used in the simulator for mutexes, conditions, and
  read/write locks, as well".

Absolute base costs are not given in the paper, so we use defaults in the
ballpark of mid-1990s UltraSPARC measurements (a few µs for an uncontended
user-level synchronisation, ~100 µs for unbound thread creation).  All of
them are configurable; only the two published multipliers are treated as
paper constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.core.errors import ConfigError
from repro.core.events import Primitive

__all__ = [
    "BOUND_CREATE_FACTOR",
    "BOUND_SYNC_FACTOR",
    "CostModel",
    "TunableParam",
    "tunable_params",
    "default_params",
    "apply_params",
]

#: Creating a bound thread is 6.7x the cost of an unbound one (§3.2, [17]).
BOUND_CREATE_FACTOR = 6.7

#: Synchronisation with bound threads costs 5.9x unbound (§3.2, [17]).
BOUND_SYNC_FACTOR = 5.9

#: Default per-primitive base costs (µs) for *unbound* threads.
_DEFAULT_BASE_COSTS: Dict[Primitive, int] = {
    Primitive.THR_CREATE: 100,
    Primitive.THR_EXIT: 20,
    Primitive.THR_JOIN: 10,
    Primitive.THR_YIELD: 5,
    Primitive.THR_SETPRIO: 5,
    Primitive.THR_SETCONCURRENCY: 10,
    Primitive.MUTEX_LOCK: 2,
    Primitive.MUTEX_TRYLOCK: 2,
    Primitive.MUTEX_UNLOCK: 2,
    Primitive.SEMA_INIT: 2,
    Primitive.SEMA_WAIT: 3,
    Primitive.SEMA_TRYWAIT: 3,
    Primitive.SEMA_POST: 3,
    Primitive.COND_WAIT: 4,
    Primitive.COND_TIMEDWAIT: 5,
    Primitive.COND_SIGNAL: 3,
    Primitive.COND_BROADCAST: 5,
    Primitive.RW_RDLOCK: 3,
    Primitive.RW_WRLOCK: 3,
    Primitive.RW_TRYRDLOCK: 3,
    Primitive.RW_TRYWRLOCK: 3,
    Primitive.RW_UNLOCK: 3,
}

#: Primitives subject to the bound-thread synchronisation multiplier.
_SYNC_PRIMITIVES = frozenset(
    p
    for p in _DEFAULT_BASE_COSTS
    if p.value.split("_")[0] in ("mutex", "sema", "cond", "rw")
)

#: Thread-management primitives (the complement of the sync group).
_THREAD_PRIMITIVES = frozenset(
    p for p in _DEFAULT_BASE_COSTS if p not in _SYNC_PRIMITIVES
)


@dataclass(frozen=True)
class CostModel:
    """Maps each primitive to the CPU time (µs) its call consumes.

    The cost is charged to the calling thread as CPU time immediately
    before the primitive's semantic effect is applied — which is how the
    uncontended path of a library call shows up on a real machine.

    Attributes
    ----------
    base_costs:
        Per-primitive µs cost for unbound threads.
    bound_create_factor / bound_sync_factor:
        The paper's published multipliers.
    thread_switch_us:
        User-level context switch: charged when an LWP picks up a
        different unbound thread than it last ran.
    lwp_switch_us:
        Kernel-level context switch: charged when a processor switches
        from one LWP to another.  §6 notes the paper's simulator "does
        not consider the overhead for LWP context switches on a
        multiprocessor", so the paper-faithful default is 0; set it to
        study that approximation (see the ablation benchmark).
    """

    base_costs: Dict[Primitive, int] = field(
        default_factory=lambda: dict(_DEFAULT_BASE_COSTS)
    )
    bound_create_factor: float = BOUND_CREATE_FACTOR
    bound_sync_factor: float = BOUND_SYNC_FACTOR
    thread_switch_us: int = 10
    lwp_switch_us: int = 0

    def __post_init__(self) -> None:
        # A zero or negative multiplier silently inverts the paper's
        # bound-thread cost relation and produces absurd predictions;
        # reject it at construction, naming the field.
        for name in ("bound_create_factor", "bound_sync_factor"):
            value = getattr(self, name)
            if not value > 0:
                raise ConfigError(
                    f"CostModel.{name} must be > 0, got {value!r} "
                    "(a bound-thread operation cannot be free or negative)"
                )
        for name in ("thread_switch_us", "lwp_switch_us"):
            value = getattr(self, name)
            if value < 0:
                raise ConfigError(
                    f"CostModel.{name} must be >= 0, got {value!r}"
                )
        for prim, cost in self.base_costs.items():
            if cost < 0:
                raise ConfigError(
                    f"CostModel.base_costs[{prim.value}] must be >= 0, "
                    f"got {cost!r}"
                )

    def op_cost(self, primitive: Primitive, *, bound: bool = False) -> int:
        """Cost in µs of one call to *primitive* by a (un)bound thread."""
        base = self.base_costs.get(primitive, 0)
        if not bound:
            return base
        if primitive is Primitive.THR_CREATE:
            return round(base * self.bound_create_factor)
        if primitive in _SYNC_PRIMITIVES:
            return round(base * self.bound_sync_factor)
        return base

    def scaled(self, factor: float) -> "CostModel":
        """A copy with every base cost multiplied by *factor*.

        Used by ablation benchmarks to study sensitivity to the absolute
        cost level (the paper only pins the ratios).
        """
        if factor < 0:
            raise ValueError("factor must be >= 0")
        return CostModel(
            base_costs={p: round(c * factor) for p, c in self.base_costs.items()},
            bound_create_factor=self.bound_create_factor,
            bound_sync_factor=self.bound_sync_factor,
            thread_switch_us=round(self.thread_switch_us * factor),
            lwp_switch_us=round(self.lwp_switch_us * factor),
        )


def free() -> CostModel:
    """A zero-cost model (useful in unit tests for exact-time assertions)."""
    return CostModel(
        base_costs={p: 0 for p in _DEFAULT_BASE_COSTS},
        thread_switch_us=0,
        lwp_switch_us=0,
    )


# ---------------------------------------------------------------------------
# parameter-space introspection (the calibration subsystem fits over this)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TunableParam:
    """One scalar knob of the cost model, with its fitting range.

    ``integral`` marks parameters that land in integer-µs fields; the
    calibrator may still move them continuously — :func:`apply_params`
    rounds at application time.
    """

    name: str
    default: float
    lo: float
    hi: float
    doc: str
    integral: bool = False


#: The calibratable surface of :class:`CostModel`.  The two published
#: multipliers are included — the paper measured them on one machine, a
#: different machine is allowed to disagree — plus the absolute cost
#: level of each primitive group and the user-level switch cost.  Ranges
#: are wide enough to cover any plausible mid-90s-to-now machine while
#: keeping the optimiser out of degenerate corners.
_TUNABLE_PARAMS: Tuple[TunableParam, ...] = (
    TunableParam(
        "bound_create_factor", BOUND_CREATE_FACTOR, 1.0, 20.0,
        "bound over unbound thread-creation cost ratio (paper: 6.7)",
    ),
    TunableParam(
        "bound_sync_factor", BOUND_SYNC_FACTOR, 1.0, 20.0,
        "bound over unbound synchronisation cost ratio (paper: 5.9)",
    ),
    TunableParam(
        "sync_cost_scale", 1.0, 0.1, 10.0,
        "multiplier on every sync-primitive base cost (mutex/sema/cond/rw)",
    ),
    TunableParam(
        "thread_cost_scale", 1.0, 0.1, 10.0,
        "multiplier on every thread-management base cost (create/join/...)",
    ),
    TunableParam(
        "thread_switch_us", 10.0, 0.0, 200.0,
        "user-level context switch cost in µs", integral=True,
    ),
)


def tunable_params() -> Tuple[TunableParam, ...]:
    """The cost model's calibratable parameters, in canonical order."""
    return _TUNABLE_PARAMS


def default_params() -> Dict[str, float]:
    """Name → default value for every tunable parameter."""
    return {p.name: p.default for p in _TUNABLE_PARAMS}


def apply_params(
    params: Mapping[str, float], *, base: Optional[CostModel] = None
) -> CostModel:
    """Build a :class:`CostModel` from a (possibly partial) parameter dict.

    Unknown names raise :class:`~repro.core.errors.ConfigError` — a
    profile fitted against a different parameter space must fail loudly,
    not silently ignore half its parameters.  Scales are applied to
    *base* (default: the stock model), so a profile composes with e.g. an
    ablation-scaled base model.
    """
    known = {p.name for p in _TUNABLE_PARAMS}
    unknown = set(params) - known
    if unknown:
        raise ConfigError(
            f"unknown cost parameter(s) {sorted(unknown)}; "
            f"expected a subset of {sorted(known)}"
        )
    base = base or CostModel()
    values = default_params()
    values.update({k: float(v) for k, v in params.items()})
    sync_scale = values["sync_cost_scale"]
    thread_scale = values["thread_cost_scale"]
    base_costs = {
        p: round(c * (sync_scale if p in _SYNC_PRIMITIVES else thread_scale))
        for p, c in base.base_costs.items()
    }
    return CostModel(
        base_costs=base_costs,
        bound_create_factor=values["bound_create_factor"],
        bound_sync_factor=values["bound_sync_factor"],
        thread_switch_us=round(values["thread_switch_us"]),
        lwp_switch_us=base.lwp_switch_us,
    )
