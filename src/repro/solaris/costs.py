"""Synchronisation and thread-management cost model.

The paper (§3.2, citing SunSoft's measurements in [17]) fixes two relative
costs the Simulator must honour:

* creating a **bound** thread takes **6.7×** longer than an unbound one, and
* synchronising on a semaphore takes **5.9×** longer with bound threads —
  "this value is used in the simulator for mutexes, conditions, and
  read/write locks, as well".

Absolute base costs are not given in the paper, so we use defaults in the
ballpark of mid-1990s UltraSPARC measurements (a few µs for an uncontended
user-level synchronisation, ~100 µs for unbound thread creation).  All of
them are configurable; only the two published multipliers are treated as
paper constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.events import Primitive

__all__ = [
    "BOUND_CREATE_FACTOR",
    "BOUND_SYNC_FACTOR",
    "CostModel",
]

#: Creating a bound thread is 6.7x the cost of an unbound one (§3.2, [17]).
BOUND_CREATE_FACTOR = 6.7

#: Synchronisation with bound threads costs 5.9x unbound (§3.2, [17]).
BOUND_SYNC_FACTOR = 5.9

#: Default per-primitive base costs (µs) for *unbound* threads.
_DEFAULT_BASE_COSTS: Dict[Primitive, int] = {
    Primitive.THR_CREATE: 100,
    Primitive.THR_EXIT: 20,
    Primitive.THR_JOIN: 10,
    Primitive.THR_YIELD: 5,
    Primitive.THR_SETPRIO: 5,
    Primitive.THR_SETCONCURRENCY: 10,
    Primitive.MUTEX_LOCK: 2,
    Primitive.MUTEX_TRYLOCK: 2,
    Primitive.MUTEX_UNLOCK: 2,
    Primitive.SEMA_INIT: 2,
    Primitive.SEMA_WAIT: 3,
    Primitive.SEMA_TRYWAIT: 3,
    Primitive.SEMA_POST: 3,
    Primitive.COND_WAIT: 4,
    Primitive.COND_TIMEDWAIT: 5,
    Primitive.COND_SIGNAL: 3,
    Primitive.COND_BROADCAST: 5,
    Primitive.RW_RDLOCK: 3,
    Primitive.RW_WRLOCK: 3,
    Primitive.RW_TRYRDLOCK: 3,
    Primitive.RW_TRYWRLOCK: 3,
    Primitive.RW_UNLOCK: 3,
}

#: Primitives subject to the bound-thread synchronisation multiplier.
_SYNC_PRIMITIVES = frozenset(
    p
    for p in _DEFAULT_BASE_COSTS
    if p.value.split("_")[0] in ("mutex", "sema", "cond", "rw")
)


@dataclass(frozen=True)
class CostModel:
    """Maps each primitive to the CPU time (µs) its call consumes.

    The cost is charged to the calling thread as CPU time immediately
    before the primitive's semantic effect is applied — which is how the
    uncontended path of a library call shows up on a real machine.

    Attributes
    ----------
    base_costs:
        Per-primitive µs cost for unbound threads.
    bound_create_factor / bound_sync_factor:
        The paper's published multipliers.
    thread_switch_us:
        User-level context switch: charged when an LWP picks up a
        different unbound thread than it last ran.
    lwp_switch_us:
        Kernel-level context switch: charged when a processor switches
        from one LWP to another.  §6 notes the paper's simulator "does
        not consider the overhead for LWP context switches on a
        multiprocessor", so the paper-faithful default is 0; set it to
        study that approximation (see the ablation benchmark).
    """

    base_costs: Dict[Primitive, int] = field(
        default_factory=lambda: dict(_DEFAULT_BASE_COSTS)
    )
    bound_create_factor: float = BOUND_CREATE_FACTOR
    bound_sync_factor: float = BOUND_SYNC_FACTOR
    thread_switch_us: int = 10
    lwp_switch_us: int = 0

    def op_cost(self, primitive: Primitive, *, bound: bool = False) -> int:
        """Cost in µs of one call to *primitive* by a (un)bound thread."""
        base = self.base_costs.get(primitive, 0)
        if not bound:
            return base
        if primitive is Primitive.THR_CREATE:
            return round(base * self.bound_create_factor)
        if primitive in _SYNC_PRIMITIVES:
            return round(base * self.bound_sync_factor)
        return base

    def scaled(self, factor: float) -> "CostModel":
        """A copy with every base cost multiplied by *factor*.

        Used by ablation benchmarks to study sensitivity to the absolute
        cost level (the paper only pins the ratios).
        """
        if factor < 0:
            raise ValueError("factor must be >= 0")
        return CostModel(
            base_costs={p: round(c * factor) for p, c in self.base_costs.items()},
            bound_create_factor=self.bound_create_factor,
            bound_sync_factor=self.bound_sync_factor,
            thread_switch_us=round(self.thread_switch_us * factor),
            lwp_switch_us=round(self.lwp_switch_us * factor),
        )


def free() -> CostModel:
    """A zero-cost model (useful in unit tests for exact-time assertions)."""
    return CostModel(
        base_costs={p: 0 for p in _DEFAULT_BASE_COSTS},
        thread_switch_us=0,
        lwp_switch_us=0,
    )
