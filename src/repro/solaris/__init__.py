"""Solaris 2.5 scheduling substrate: threads, LWPs, TS class, sync objects."""

from repro.solaris.costs import BOUND_CREATE_FACTOR, BOUND_SYNC_FACTOR, CostModel
from repro.solaris.dispatch import DispatchEntry, DispatchTable, TS_LEVELS
from repro.solaris.lwp import LwpState, SimLwp
# NOTE: repro.solaris.scheduler is intentionally not imported here — it
# depends on repro.core, which depends on this package's cost model;
# import it as `from repro.solaris.scheduler import Scheduler` directly.
from repro.solaris.sync import (
    SimCondVar,
    SimMutex,
    SimRwLock,
    SimSemaphore,
    SyncObjectTable,
    WaitQueue,
)
from repro.solaris.thread_model import DEFAULT_USER_PRIORITY, SimThread, ThreadState

__all__ = [
    "BOUND_CREATE_FACTOR",
    "BOUND_SYNC_FACTOR",
    "CostModel",
    "DispatchEntry",
    "DispatchTable",
    "TS_LEVELS",
    "LwpState",
    "SimLwp",
    "SimCondVar",
    "SimMutex",
    "SimRwLock",
    "SimSemaphore",
    "SyncObjectTable",
    "WaitQueue",
    "DEFAULT_USER_PRIORITY",
    "SimThread",
    "ThreadState",
]
