"""User-level thread model.

In Solaris 2.x (§3.2 of the paper) application programmers express
parallelism with *user-level threads*, which are multiplexed on LWPs unless
bound.  This module holds the simulated thread object: identity, scheduling
attributes (priority, boundness, CPU binding), lifecycle state, and the
accounting the Visualizer's event popup reports (start/end time, time spent
actually working, total lifetime).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.core.ids import ThreadId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.solaris.lwp import SimLwp

__all__ = ["ThreadState", "SimThread", "DEFAULT_USER_PRIORITY"]

#: Default user-level priority for new threads (``thr_create`` with no
#: priority attribute).  Higher numbers are more urgent, as in Solaris.
DEFAULT_USER_PRIORITY = 1


class ThreadState(enum.Enum):
    """Lifecycle of a simulated user-level thread.

    The Visualizer maps these to the execution-flow graph (§3.3): RUNNING
    is a solid line, RUNNABLE a grey line ("ready to run but does not have
    any LWP or CPU to run on"), BLOCKED/SLEEPING no line.  ZOMBIE has
    exited but not yet been joined; DEAD is fully reaped.
    """

    EMBRYO = "embryo"  # created, creation cost still being paid
    RUNNABLE = "runnable"
    RUNNING = "running"
    BLOCKED = "blocked"  # waiting on a synchronisation object or join
    SLEEPING = "sleeping"  # in a pure delay (replayed timed-out wait)
    ZOMBIE = "zombie"
    DEAD = "dead"


@dataclass(slots=True)
class SimThread:
    """A simulated user-level thread.

    Attributes
    ----------
    tid:
        Solaris-style small-integer thread id (main thread is 1).
    func_name:
        Name of the start routine (shown in the Visualizer popup).
    priority:
        User-level scheduling priority; may be overridden globally via
        :class:`~repro.core.config.SimConfig` (§3.2: an override makes the
        thread's own ``thr_setprio`` events ignored).
    bound:
        True when the thread is bound to an LWP.
    bound_cpu:
        CPU this thread (and its LWP) is pinned to, or None.
    priority_locked:
        Set when the user supplied an explicit priority in the simulation
        configuration; ``thr_setprio`` is then a no-op for this thread.
    """

    tid: ThreadId
    func_name: str = ""
    priority: int = DEFAULT_USER_PRIORITY
    bound: bool = False
    bound_cpu: Optional[int] = None
    priority_locked: bool = False
    #: Solaris RT-class priority for this thread's LWP (None = TS class)
    rt_priority: Optional[int] = None

    # --- dynamic scheduling state -----------------------------------------
    state: ThreadState = ThreadState.EMBRYO
    lwp: Optional["SimLwp"] = None
    last_cpu: Optional[int] = None

    #: Remaining CPU time of the burst in flight when the LWP was preempted.
    burst_remaining_us: int = 0

    #: Monotonic sequence number used for FIFO tie-breaks in run queues.
    enqueue_seq: int = 0

    # --- accounting for the Visualizer popup (§3.3) ------------------------
    start_time_us: Optional[int] = None
    end_time_us: Optional[int] = None
    cpu_time_us: int = 0
    created_at_us: int = 0

    #: Time at which the thread last entered the RUNNABLE state (for
    #: starvation boosts and queue statistics).
    runnable_since_us: int = 0

    #: Burst-completion closure cached by the replay fast path (built once
    #: per thread instead of one lambda per burst).
    burst_action: Optional[Callable[[], None]] = field(
        default=None, repr=False, compare=False
    )

    #: Spare burst ScheduledEvent recycled by the fast path (reused while
    #: its previous occurrence executed; replaced when cancelled).
    burst_event: Optional[object] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.bound_cpu is not None:
            self.bound = True

    # ------------------------------------------------------------------

    @property
    def alive(self) -> bool:
        return self.state not in (ThreadState.ZOMBIE, ThreadState.DEAD)

    @property
    def is_runnable(self) -> bool:
        return self.state is ThreadState.RUNNABLE

    @property
    def is_running(self) -> bool:
        return self.state is ThreadState.RUNNING

    def total_time_us(self) -> Optional[int]:
        """Lifetime from first run to exit (popup: "total execution time
        of the thread (including the time the thread was blocked or
        runnable)")."""
        if self.start_time_us is None or self.end_time_us is None:
            return None
        return self.end_time_us - self.start_time_us

    def set_priority(self, priority: int) -> bool:
        """Apply ``thr_setprio``; returns False when the configuration
        override locks this thread's priority (§3.2)."""
        if self.priority_locked:
            return False
        self.priority = priority
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "B" if self.bound else "u"
        if self.bound_cpu is not None:
            flags += f"@cpu{self.bound_cpu}"
        return f"<T{int(self.tid)} {self.func_name or '?'} {self.state.value} {flags}>"
