"""Analysis: speed-up/error metrics, bottleneck, critical-path and lint tools."""

from repro.analysis.lint import Finding, LintReport, Severity, run_lint
from repro.analysis.compare import (
    ComparisonReport,
    ObjectDelta,
    compare_results,
    format_comparison,
)
from repro.analysis.critical_path import (
    ParallelismSummary,
    critical_path_us,
    max_speedup,
    parallelism_profile,
)
from repro.analysis.metrics import (
    ObjectContention,
    contention_by_object,
    prediction_error,
    recording_overhead,
    top_bottleneck,
)
from repro.analysis.report import Table1, Table1Cell, Table1Row, format_table1
from repro.analysis.transform import (
    scale_compute,
    scale_critical_sections,
    scale_io,
    split_lock,
)
from repro.analysis.whatif import (
    KneePoint,
    find_knee,
    lwp_sensitivity,
    speedup_curve,
)

__all__ = [
    "ComparisonReport",
    "ObjectDelta",
    "compare_results",
    "format_comparison",
    "ParallelismSummary",
    "critical_path_us",
    "max_speedup",
    "parallelism_profile",
    "ObjectContention",
    "contention_by_object",
    "prediction_error",
    "recording_overhead",
    "top_bottleneck",
    "scale_compute",
    "scale_critical_sections",
    "scale_io",
    "split_lock",
    "KneePoint",
    "find_knee",
    "lwp_sensitivity",
    "speedup_curve",
    "Table1",
    "Table1Cell",
    "Table1Row",
    "format_table1",
    "Finding",
    "LintReport",
    "Severity",
    "run_lint",
]
