"""What-if sweeps over one trace (extension utilities).

The tool's core promise — "the developer can inspect the behaviour of the
application as if it had been run on a multiprocessor without even having
one" — invites batch questions.  These helpers answer the common ones:

* :func:`speedup_curve` — the full speed-up curve over a CPU range;
* :func:`find_knee` — the smallest machine achieving a target fraction of
  the trace's maximum achievable speed-up (buy-this-many-CPUs advice);
* :func:`lwp_sensitivity` — how the program responds to LWP-pool limits
  on a fixed machine (the ``thr_setconcurrency`` tuning question).

All three route through a :class:`~repro.jobs.engine.JobEngine`, so every
simulated point is content-addressed: repeated questions about the same
trace are answered from the result cache, and a pooled engine (pass one,
or set ``VPPB_WORKERS``) runs the points in parallel.  Numbers are
identical to the old serial implementations — the simulator is
deterministic and the engine executes the same jobs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

from repro.analysis.critical_path import max_speedup
from repro.core.config import SimConfig
from repro.core.errors import AnalysisError, SimulationError
from repro.core.predictor import SpeedupPrediction
from repro.core.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.jobs.engine import JobEngine

__all__ = ["speedup_curve", "KneePoint", "find_knee", "lwp_sensitivity"]


def _engine(engine: "Optional[JobEngine]") -> "JobEngine":
    if engine is not None:
        return engine
    from repro.jobs.engine import default_engine

    return default_engine()


def speedup_curve(
    trace: Trace,
    max_cpus: int,
    *,
    base_config: Optional[SimConfig] = None,
    engine: "Optional[JobEngine]" = None,
) -> List[SpeedupPrediction]:
    """Predicted speed-up for every machine size from 1 to *max_cpus*."""
    if max_cpus < 1:
        raise ValueError(f"max_cpus must be >= 1, got {max_cpus}")
    return _engine(engine).speedup_curve(trace, max_cpus, base_config=base_config)


@dataclass(frozen=True)
class KneePoint:
    """The sweet-spot machine for a traced program."""

    cpus: int
    speedup: float
    bound: float  # the trace's maximum achievable speed-up

    @property
    def fraction_of_bound(self) -> float:
        if not self.bound:
            raise AnalysisError(
                "trace has a zero speed-up bound (no measurable work); "
                "fraction of the bound is undefined"
            )
        return self.speedup / self.bound


def find_knee(
    trace: Trace,
    *,
    target_fraction: float = 0.8,
    max_cpus: int = 32,
    base_config: Optional[SimConfig] = None,
    engine: "Optional[JobEngine]" = None,
) -> KneePoint:
    """Smallest CPU count reaching *target_fraction* of the achievable
    speed-up.

    Doubles the machine until the target is met (or ``max_cpus`` is hit),
    then walks back with a binary search.  Every probe goes through the
    engine, so the points the exponential phase and the walk-back share
    are simulated once.
    """
    if not 0 < target_fraction <= 1:
        raise ValueError(f"target_fraction must be in (0, 1], got {target_fraction}")
    eng = _engine(engine)
    bound = max_speedup(trace, base_config=base_config)
    target = bound * target_fraction

    from repro.jobs.model import TraceRef

    ref = TraceRef.from_trace(trace)

    def probe(cpus: int) -> SpeedupPrediction:
        return eng.predict_speedups(
            trace, [cpus], base_config=base_config, trace_ref=ref
        )[0]

    # exponential probe
    cpus = 1
    last = probe(cpus)
    while last.speedup < target and cpus < max_cpus:
        cpus = min(max_cpus, cpus * 2)
        last = probe(cpus)
    if last.speedup < target:
        return KneePoint(cpus=cpus, speedup=last.speedup, bound=bound)

    # walk back to the smallest machine still meeting the target
    lo, hi = max(1, cpus // 2), cpus
    best = (cpus, last.speedup)
    while lo < hi:
        mid = (lo + hi) // 2
        pred = probe(mid)
        if pred.speedup >= target:
            best = (mid, pred.speedup)
            hi = mid
        else:
            lo = mid + 1
    return KneePoint(cpus=best[0], speedup=best[1], bound=bound)


def lwp_sensitivity(
    trace: Trace,
    cpus: int,
    lwp_counts: Sequence[Optional[int]] = (1, 2, 4, 8, None),
    *,
    base_config: Optional[SimConfig] = None,
    engine: "Optional[JobEngine]" = None,
) -> Dict[Optional[int], int]:
    """Makespan under each LWP-pool limit (None = on-demand)."""
    from repro.jobs.model import TraceRef

    base = base_config or SimConfig()
    configs = [
        SimConfig(
            cpus=cpus,
            lwps=lwps,
            comm_delay_us=base.comm_delay_us,
            costs=base.costs,
            dispatch=base.dispatch,
            time_slicing=base.time_slicing,
            scheduler=base.scheduler,
        )
        for lwps in lwp_counts
    ]
    outcomes = _engine(engine).makespans(
        TraceRef.from_trace(trace),
        configs,
        labels=[f"lwps={n}" for n in lwp_counts],
    )
    out: Dict[Optional[int], int] = {}
    for lwps, outcome in zip(lwp_counts, outcomes):
        if not outcome.ok or not outcome.complete:
            raise SimulationError(
                f"lwp sensitivity job ({outcome.label}) failed: "
                f"{outcome.error or outcome.reason}"
            )
        out[lwps] = outcome.makespan_us
    return out
