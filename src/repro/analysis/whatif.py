"""What-if sweeps over one trace (extension utilities).

The tool's core promise — "the developer can inspect the behaviour of the
application as if it had been run on a multiprocessor without even having
one" — invites batch questions.  These helpers answer the common ones:

* :func:`speedup_curve` — the full speed-up curve over a CPU range;
* :func:`find_knee` — the smallest machine achieving a target fraction of
  the trace's maximum achievable speed-up (buy-this-many-CPUs advice);
* :func:`lwp_sensitivity` — how the program responds to LWP-pool limits
  on a fixed machine (the ``thr_setconcurrency`` tuning question).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.critical_path import max_speedup
from repro.core.config import SimConfig
from repro.core.predictor import SpeedupPrediction, compile_trace, predict, predict_speedup
from repro.core.trace import Trace

__all__ = ["speedup_curve", "KneePoint", "find_knee", "lwp_sensitivity"]


def speedup_curve(
    trace: Trace,
    max_cpus: int,
    *,
    base_config: Optional[SimConfig] = None,
) -> List[SpeedupPrediction]:
    """Predicted speed-up for every machine size from 1 to *max_cpus*."""
    if max_cpus < 1:
        raise ValueError(f"max_cpus must be >= 1, got {max_cpus}")
    plan = compile_trace(trace)
    return [
        predict_speedup(trace, cpus, base_config=base_config, plan=plan)
        for cpus in range(1, max_cpus + 1)
    ]


@dataclass(frozen=True)
class KneePoint:
    """The sweet-spot machine for a traced program."""

    cpus: int
    speedup: float
    bound: float  # the trace's maximum achievable speed-up

    @property
    def fraction_of_bound(self) -> float:
        return self.speedup / self.bound if self.bound else 0.0


def find_knee(
    trace: Trace,
    *,
    target_fraction: float = 0.8,
    max_cpus: int = 32,
    base_config: Optional[SimConfig] = None,
) -> KneePoint:
    """Smallest CPU count reaching *target_fraction* of the achievable
    speed-up.

    Doubles the machine until the target is met (or ``max_cpus`` is hit),
    then walks back linearly — cheap because replays are fast relative to
    recording.
    """
    if not 0 < target_fraction <= 1:
        raise ValueError(f"target_fraction must be in (0, 1], got {target_fraction}")
    bound = max_speedup(trace, base_config=base_config)
    plan = compile_trace(trace)
    target = bound * target_fraction

    # exponential probe
    cpus = 1
    last = predict_speedup(trace, cpus, base_config=base_config, plan=plan)
    while last.speedup < target and cpus < max_cpus:
        cpus = min(max_cpus, cpus * 2)
        last = predict_speedup(trace, cpus, base_config=base_config, plan=plan)
    if last.speedup < target:
        return KneePoint(cpus=cpus, speedup=last.speedup, bound=bound)

    # walk back to the smallest machine still meeting the target
    lo, hi = max(1, cpus // 2), cpus
    best = (cpus, last.speedup)
    while lo < hi:
        mid = (lo + hi) // 2
        pred = predict_speedup(trace, mid, base_config=base_config, plan=plan)
        if pred.speedup >= target:
            best = (mid, pred.speedup)
            hi = mid
        else:
            lo = mid + 1
    return KneePoint(cpus=best[0], speedup=best[1], bound=bound)


def lwp_sensitivity(
    trace: Trace,
    cpus: int,
    lwp_counts: Sequence[Optional[int]] = (1, 2, 4, 8, None),
    *,
    base_config: Optional[SimConfig] = None,
) -> Dict[Optional[int], int]:
    """Makespan under each LWP-pool limit (None = on-demand)."""
    base = base_config or SimConfig()
    plan = compile_trace(trace)
    out: Dict[Optional[int], int] = {}
    for lwps in lwp_counts:
        config = SimConfig(
            cpus=cpus,
            lwps=lwps,
            comm_delay_us=base.comm_delay_us,
            costs=base.costs,
            dispatch=base.dispatch,
            time_slicing=base.time_slicing,
        )
        out[lwps] = predict(trace, config, plan=plan).makespan_us
    return out
