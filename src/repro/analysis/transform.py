"""Trace transformations: test a tuning hypothesis before writing it.

The §5 workflow finds a bottleneck, *edits the program*, re-records and
re-simulates.  But many candidate edits have a predictable effect on the
trace itself — "make the insert copy twice as fast", "shrink that
critical section", "cut the I/O in half" — so they can be evaluated by
transforming the *replay plan* and re-simulating, no new code and no new
recording needed.  That turns the tuning loop's expensive first iteration
into a ranking of hypotheses.

All transformations return a new plan; the input is never mutated.
Critical-section scaling exploits a structural fact of the step model:
the work a thread does while holding a lock is exactly the ``work_us`` of
the steps *following* the acquisition, up to and including the step whose
op releases it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.simulator import ReplayPlan
from repro.program import ops as op_mod
from repro.program.behavior import Step

__all__ = [
    "scale_compute",
    "scale_io",
    "scale_critical_sections",
    "split_lock",
]


def _copy_plan(plan: ReplayPlan, steps: Dict[int, List[Step]]) -> ReplayPlan:
    return ReplayPlan(steps=steps, meta=dict(plan.meta), program_name=plan.program_name)


def _scale(us: int, factor: float) -> int:
    return max(0, round(us * factor))


def scale_compute(
    plan: ReplayPlan,
    factor: float,
    *,
    threads: Optional[Sequence[int]] = None,
) -> ReplayPlan:
    """Scale every CPU burst by *factor* ("what if the code were 2x
    faster?").  ``threads`` restricts the change to some thread ids."""
    if factor < 0:
        raise ValueError(f"factor must be >= 0, got {factor}")
    chosen = set(threads) if threads is not None else None
    out: Dict[int, List[Step]] = {}
    for tid, steps in plan.steps.items():
        if chosen is not None and tid not in chosen:
            out[tid] = list(steps)
            continue
        out[tid] = [Step(_scale(s.work_us, factor), s.op) for s in steps]
    return _copy_plan(plan, out)


def scale_io(plan: ReplayPlan, factor: float) -> ReplayPlan:
    """Scale every recorded I/O wait ("what if the disk were 2x faster?")."""
    if factor < 0:
        raise ValueError(f"factor must be >= 0, got {factor}")
    out: Dict[int, List[Step]] = {}
    for tid, steps in plan.steps.items():
        new_steps = []
        for s in steps:
            if isinstance(s.op, op_mod.IoWait):
                new_op = op_mod.IoWait(
                    _scale(s.op.duration_us, factor), source=s.op.source
                )
                new_steps.append(Step(s.work_us, new_op))
            else:
                new_steps.append(s)
        out[tid] = new_steps
    return _copy_plan(plan, out)


def _release_names(op) -> Optional[str]:
    if isinstance(op, (op_mod.MutexUnlock, op_mod.RwUnlock)):
        return op.name
    return None


def _acquire_names(op) -> Optional[str]:
    if isinstance(op, (op_mod.MutexLock, op_mod.RwRdLock, op_mod.RwWrLock)):
        return op.name
    return None


def scale_critical_sections(
    plan: ReplayPlan, lock_name: str, factor: float
) -> ReplayPlan:
    """Scale the work done *while holding* ``lock_name``.

    Models the §5 hypothesis "what if the insert/fetch copy under the
    buffer mutex were cheaper?" — the serialised portion shrinks, the
    rest of the program is untouched.
    """
    if factor < 0:
        raise ValueError(f"factor must be >= 0, got {factor}")
    out: Dict[int, List[Step]] = {}
    for tid, steps in plan.steps.items():
        new_steps: List[Step] = []
        holding = False
        for s in steps:
            work = s.work_us
            if holding:
                work = _scale(work, factor)
            if _acquire_names(s.op) == lock_name:
                holding = True
            if _release_names(s.op) == lock_name:
                holding = False
            new_steps.append(Step(work, s.op))
        out[tid] = new_steps
    return _copy_plan(plan, out)


def split_lock(plan: ReplayPlan, lock_name: str, ways: int) -> ReplayPlan:
    """Spread operations on one mutex over *ways* mutexes, round-robin
    per acquisition ("what if I sharded that lock?" — the actual §5 fix,
    previewed on the trace).

    Each thread's n-th acquisition of the lock (and everything up to the
    matching release) is redirected to shard ``n % ways``.  Contention
    drops accordingly; the work inside the sections is unchanged.
    """
    if ways < 1:
        raise ValueError(f"ways must be >= 1, got {ways}")
    out: Dict[int, List[Step]] = {}
    for tid, steps in plan.steps.items():
        new_steps: List[Step] = []
        shard = None
        count = 0
        for s in steps:
            op = s.op
            if isinstance(op, op_mod.MutexLock) and op.name == lock_name:
                shard = count % ways
                count += 1
                op = op_mod.MutexLock(f"{lock_name}#{shard}", source=op.source)
            elif isinstance(op, op_mod.MutexTrylock) and op.name == lock_name:
                shard = count % ways
                count += 1
                op = op_mod.MutexTrylock(f"{lock_name}#{shard}", source=op.source)
            elif (
                isinstance(op, op_mod.MutexUnlock)
                and op.name == lock_name
                and shard is not None
            ):
                op = op_mod.MutexUnlock(f"{lock_name}#{shard}", source=op.source)
                shard = None
            new_steps.append(Step(s.work_us, op))
        out[tid] = new_steps
    return _copy_plan(plan, out)
