"""Speed-up, error and contention metrics.

Implements the paper's quantities:

* **speed-up** — uni-processor time over multiprocessor time;
* **prediction error** — §4: "The error is defined as ((Real speed-up) -
  (Predicted speed-up))/(Real speed-up)";
* **recording overhead** — §4: the relative prolongation of the monitored
  uni-processor run;

plus the bottleneck statistics the Visualizer workflow of §5 relies on
(which synchronisation object blocked threads for how long).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.errors import AnalysisError
from repro.core.events import BLOCKING_PRIMITIVES
from repro.core.ids import SyncObjectId
from repro.core.result import SimulationResult

__all__ = [
    "prediction_error",
    "recording_overhead",
    "ObjectContention",
    "contention_by_object",
    "top_bottleneck",
]


def prediction_error(real_speedup: float, predicted_speedup: float) -> float:
    """The paper's §4 error: ``(real - predicted) / real``.

    Positive when the prediction is pessimistic (predicted slower than
    reality), negative when optimistic.  Raises
    :class:`~repro.core.errors.AnalysisError` when the real speed-up is
    zero — the §4 ratio is undefined there, and a measured speed-up of
    zero means the measurement itself is broken.
    """
    if real_speedup == 0:
        raise AnalysisError(
            "prediction error is undefined for a zero real speed-up "
            f"(predicted was {predicted_speedup})"
        )
    return (real_speedup - predicted_speedup) / real_speedup


def recording_overhead(monitored_us: int, plain_us: int) -> float:
    """Relative §4 recording intrusion: ``(monitored - plain) / plain``.

    Raises :class:`~repro.core.errors.AnalysisError` for a zero plain
    runtime (no baseline, no ratio)."""
    if plain_us == 0:
        raise AnalysisError(
            "recording overhead is undefined for a zero plain runtime "
            f"(monitored was {monitored_us} us)"
        )
    return (monitored_us - plain_us) / plain_us


@dataclass(frozen=True)
class ObjectContention:
    """Aggregate blocking behaviour of one synchronisation object."""

    obj: SyncObjectId
    operations: int
    blocking_operations: int
    total_blocked_us: int
    max_blocked_us: int

    @property
    def mean_blocked_us(self) -> float:
        if self.blocking_operations == 0:
            return 0.0
        return self.total_blocked_us / self.blocking_operations


def contention_by_object(
    result: SimulationResult,
    *,
    block_threshold_us: int = 0,
) -> List[ObjectContention]:
    """Per-object contention profile, worst first.

    An operation counts as *blocking* when its simulated duration exceeds
    ``block_threshold_us`` beyond instantaneous (the placed event spans
    the blocked wait).  This is the programmatic form of the §5 hunt:
    "by clicking with the mouse on the arrows, we reach the conclusion
    that it is the same mutex causing the blocking for all threads".
    """
    acc: Dict[SyncObjectId, List[int]] = {}
    for ev in result.events:
        if ev.obj is None:
            continue
        entry = acc.setdefault(ev.obj, [0, 0, 0, 0])
        entry[0] += 1
        duration = ev.duration_us
        if ev.primitive in BLOCKING_PRIMITIVES and duration > block_threshold_us:
            entry[1] += 1
            entry[2] += duration
            entry[3] = max(entry[3], duration)
    profiles = [
        ObjectContention(
            obj=obj,
            operations=e[0],
            blocking_operations=e[1],
            total_blocked_us=e[2],
            max_blocked_us=e[3],
        )
        for obj, e in acc.items()
    ]
    profiles.sort(key=lambda p: p.total_blocked_us, reverse=True)
    return profiles


def top_bottleneck(result: SimulationResult) -> Optional[ObjectContention]:
    """The single object responsible for the most blocked time."""
    profiles = contention_by_object(result)
    if not profiles or profiles[0].total_blocked_us == 0:
        return None
    return profiles[0]
