"""SARIF 2.1.0 serialisation of a lint report.

Emits the minimal-but-valid shape consumers (GitHub code scanning,
VS Code SARIF viewer) expect: one run, ``tool.driver`` carrying the rule
catalog, one ``result`` per finding with ``ruleId``/``level``/``message``
and physical locations.  Witness sites become ``relatedLocations``; each
result carries a stable ``partialFingerprints`` entry (the same identity
``vppb lint --baseline`` suppresses on), and replayable witness
schedules plus ``--whatif`` manifestation tags ride in ``properties``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.core.events import SourceLocation

from repro.analysis.lint.engine import all_rules
from repro.analysis.lint.findings import Finding, LintReport, Site

__all__ = ["to_sarif", "sarif_json"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "vppb-lint"


def _location(
    source: Optional[SourceLocation],
    *,
    message: Optional[str] = None,
    tid: Optional[int] = None,
) -> Optional[Dict[str, object]]:
    if source is None and message is None:
        return None
    out: Dict[str, object] = {}
    if source is not None:
        region: Dict[str, object] = {"startLine": max(1, source.line)}
        out["physicalLocation"] = {
            "artifactLocation": {"uri": source.file},
            "region": region,
        }
        if source.function:
            out["logicalLocations"] = [
                {"name": source.function, "kind": "function"}
            ]
    if message is not None:
        out["message"] = {"text": message}
    if tid is not None:
        out.setdefault("properties", {})["tid"] = tid
    return out


def _result(finding: Finding, rule_index: Dict[str, int]) -> Dict[str, object]:
    result: Dict[str, object] = {
        "ruleId": finding.rule_id,
        "level": finding.severity.value,
        "message": {"text": finding.message},
    }
    if finding.rule_id in rule_index:
        result["ruleIndex"] = rule_index[finding.rule_id]
    loc = _location(finding.source, tid=finding.tid)
    if loc is not None:
        result["locations"] = [loc]
    related: List[Dict[str, object]] = []
    for site in finding.related:
        rel = _location(site.source, message=site.describe(), tid=site.tid)
        if rel is not None:
            related.append(rel)
    if related:
        result["relatedLocations"] = related
    result["partialFingerprints"] = {
        "vppbFingerprint/v1": finding.fingerprint()
    }
    props: Dict[str, object] = {}
    if finding.tid is not None:
        props["tid"] = finding.tid
    if finding.obj is not None:
        props["object"] = str(finding.obj)
    if finding.event_index is not None:
        props["eventIndex"] = finding.event_index
    if finding.witness is not None:
        props["witness"] = finding.witness
    if finding.manifests is not None:
        props["manifests"] = list(finding.manifests)
    if props:
        result["properties"] = props
    return result


def to_sarif(report: LintReport) -> Dict[str, object]:
    """The report as a SARIF 2.1.0 ``log`` object (plain dict)."""
    rules = all_rules()
    rule_index = {r.id: i for i, r in enumerate(rules)}
    driver = {
        "name": TOOL_NAME,
        "informationUri": "https://example.invalid/vppb",
        "rules": [
            {
                "id": r.id,
                "name": type(r).__name__,
                "shortDescription": {"text": r.title},
                "fullDescription": {"text": r.rationale},
                "defaultConfiguration": {"level": r.severity.value},
            }
            for r in rules
        ],
    }
    run = {
        "tool": {"driver": driver},
        "results": [
            _result(f, rule_index) for f in report.sorted().findings
        ],
        "properties": {
            "program": report.program,
            "rulesRun": list(report.rules_run),
        },
    }
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [run],
    }


def sarif_json(report: LintReport, *, indent: int = 2) -> str:
    return json.dumps(to_sarif(report), indent=indent, sort_keys=False)
