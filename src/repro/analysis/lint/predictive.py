"""Predictive lint: which hazards *manifest* on machines you don't own?

Plain ``vppb lint`` diagnoses what the recorded log proves.  The
predictive pass answers the paper's what-if question for correctness
instead of performance: take the lint findings, replay the *unperturbed*
trace under every machine configuration in a sweep manifest, and tag
each hazard with the configurations where it concretely shows up:

* a **data race** (VPPB-R001) manifests under a config when both
  accesses of the racy pair were placed and the RUNNING segments
  containing them overlap in simulated time — the two threads really
  were on different CPUs at once, so the access order is decided by the
  hardware, not the program.  Impossible at one CPU; a race that is
  tagged only for ``>= 2`` CPUs is exactly the bug that ships when you
  test on a uniprocessor and deploy on an SMP.
* a **lock-order cycle** (VPPB-R002) manifests when the replay under
  that config actually ends in ``RunStatus.DEADLOCK`` — the recorded
  schedule survived by luck, this machine's schedule does not.

Each *(trace, config)* probe is one content-addressed
:class:`~repro.jobs.model.LintJob` through the
:class:`~repro.jobs.engine.JobEngine`, so grids fan out over the worker
pool and re-runs are served from the :class:`~repro.jobs.cache.ResultCache`.
The probe itself (:func:`probe_trace`) is a pure function of
*(trace, config, lint version)* — that purity is what makes the cache
sound.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence

from repro.core.config import SimConfig
from repro.core.result import RunStatus, SegmentKind
from repro.core.trace import Trace

from repro.analysis.lint.engine import run_lint
from repro.analysis.lint.findings import Finding, LintReport
from repro.analysis.lint.witness import _index_trace

__all__ = [
    "lint_probe_context",
    "probe_trace",
    "WhatifCell",
    "WhatifResult",
    "whatif_lint",
]

#: Rules the grid can concretely reproduce in replay.  Other rules keep
#: ``manifests=None`` (probing them is meaningless, not merely negative).
PROBED_RULES = ("VPPB-R001", "VPPB-R002")


# ---------------------------------------------------------------------------
# worker-side probe (pure: trace x config -> JSON-safe verdicts)
# ---------------------------------------------------------------------------


def lint_probe_context(trace: Trace) -> Dict[str, Any]:
    """The config-independent half of a probe: lint once, index once.

    A grid sends the same trace through N configs; everything here is
    identical across those N jobs, so workers cache it per trace (see
    :mod:`repro.jobs.worker`).  Returns ``{"specs": [...]}`` where each
    spec carries a finding fingerprint plus what to look for in a replay.
    """
    report = run_lint(trace)
    wanted: List[int] = []
    race_findings: List[Finding] = []
    for f in report:
        if f.rule_id == "VPPB-R001" and f.event_index is not None and f.related:
            race_findings.append(f)
            wanted.append(f.event_index)
            if f.related[0].event_index is not None:
                wanted.append(f.related[0].event_index)
    _, ordinals = _index_trace(trace, wanted)

    specs: List[Dict[str, Any]] = []
    for f in report:
        if f.rule_id == "VPPB-R002":
            specs.append({"rule": f.rule_id, "fp": f.fingerprint()})
        elif f in race_findings:
            earlier = f.related[0]
            if (
                f.event_index in ordinals
                and earlier.event_index in ordinals
                and f.obj is not None
            ):
                specs.append(
                    {
                        "rule": f.rule_id,
                        "fp": f.fingerprint(),
                        "var": str(f.obj),
                        "first": {
                            "tid": earlier.tid,
                            "ordinal": ordinals[earlier.event_index],
                        },
                        "second": {
                            "tid": f.tid,
                            "ordinal": ordinals[f.event_index],
                        },
                    }
                )
    return {"specs": specs}


def _running_span(result, ev):
    """The RUNNING segment interval containing a placed event's start."""
    for seg in result.segments.get(ev.tid, ()):
        if (
            seg.kind is SegmentKind.RUNNING
            and seg.start_us <= ev.start_us < max(seg.end_us, seg.start_us + 1)
        ):
            return seg.start_us, seg.end_us
    return ev.start_us, ev.end_us


def _locate(result, var: str, spec: Dict[str, Any]):
    from repro.core.events import Primitive

    tid = int(spec["tid"])
    wanted = int(spec["ordinal"])
    seen = 0
    for ev in result.events:
        if (
            int(ev.tid) == tid
            and ev.primitive in (Primitive.SHARED_READ, Primitive.SHARED_WRITE)
            and ev.obj is not None
            and str(ev.obj) == var
        ):
            if seen == wanted:
                return ev
            seen += 1
    return None


def probe_trace(
    trace: Trace,
    config: SimConfig,
    *,
    plan=None,
    context: Optional[Dict[str, Any]] = None,
    max_events: int = 50_000_000,
    watchdog=None,
) -> Dict[str, Any]:
    """Replay *trace* unperturbed under *config*; judge each finding.

    The JSON-safe return value becomes a :class:`LintJob` outcome's
    ``payload``: ``manifested`` maps finding fingerprints to whether the
    hazard concretely showed up under this configuration.
    """
    from repro.core.predictor import compile_trace
    from repro.core.simulator import Simulator

    if context is None:
        context = lint_probe_context(trace)
    if plan is None:
        plan = compile_trace(trace)
    sim = Simulator(
        config, max_events=max_events, watchdog=watchdog, strict=False
    )
    result = sim.run_replay(plan)

    deadlocked = result.status is RunStatus.DEADLOCK
    manifested: Dict[str, bool] = {}
    for spec in context["specs"]:
        if spec["rule"] == "VPPB-R002":
            manifested[spec["fp"]] = deadlocked
            continue
        first = _locate(result, spec["var"], spec["first"])
        second = _locate(result, spec["var"], spec["second"])
        if first is None or second is None:
            manifested[spec["fp"]] = False
            continue
        a0, a1 = _running_span(result, first)
        b0, b1 = _running_span(result, second)
        manifested[spec["fp"]] = a0 < b1 and b0 < a1
    return {
        "kind": "lint",
        "replay_status": result.status.value,
        "replay_reason": (
            result.incompleteness.describe() if result.incompleteness else None
        ),
        "manifested": manifested,
        "makespan_us": result.makespan_us,
        "engine_events": result.engine_events,
    }


# ---------------------------------------------------------------------------
# orchestration (engine-backed grid + finding annotation)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WhatifCell:
    """One grid configuration's probe summary."""

    label: str
    cpus: int
    status: str  # probe outcome: complete / failed / worker-crashed / ...
    replay_status: Optional[str]  # inner replay RunStatus value
    from_cache: bool
    error: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "cpus": self.cpus,
            "status": self.status,
            "replay_status": self.replay_status,
            "from_cache": self.from_cache,
            "error": self.error,
        }


@dataclass
class WhatifResult:
    """A lint report annotated with cross-config manifestation tags."""

    report: LintReport
    cells: List[WhatifCell]

    @property
    def predicted_only(self) -> List[Finding]:
        """Findings that never manifest on one CPU but do under some
        probed config — the bugs a uniprocessor test box can't show you."""
        return [
            f
            for f in self.report
            if f.manifests
            and not any(lbl.startswith("1cpu") for lbl in f.manifests)
        ]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "grid": [c.to_dict() for c in self.cells],
            "report": self.report.to_dict(),
        }


def whatif_lint(
    trace: Trace,
    manifest,
    *,
    report: Optional[LintReport] = None,
    engine=None,
    use_cache: bool = True,
) -> WhatifResult:
    """Fan the manifestation probe across a sweep manifest's grid.

    *manifest* is a :class:`~repro.jobs.manifest.SweepManifest`; its
    ``trace`` path is ignored in favour of the already-loaded *trace*
    (the canonical text ships to workers, so a salvaged log probes the
    same records the lint saw).  Returns the findings with their
    ``manifests`` tuples filled for :data:`PROBED_RULES` findings.
    """
    from repro.jobs.engine import default_engine
    from repro.jobs.model import LintJob, TraceRef

    if engine is None:
        engine = default_engine()
    if report is None:
        report = run_lint(trace)

    ref = TraceRef.from_trace(trace)
    grid = manifest.configs(trace)
    jobs = [
        LintJob(trace=ref, config=cell.config, label=cell.label)
        for cell in grid
    ]
    outcomes = engine.run(jobs, use_cache=use_cache)

    tags: Dict[str, List[str]] = {}
    cells: List[WhatifCell] = []
    for cell, out in zip(grid, outcomes):
        payload = out.payload if out.ok else None
        cells.append(
            WhatifCell(
                label=cell.label,
                cpus=cell.cpus,
                status=out.status,
                replay_status=(
                    str(payload.get("replay_status")) if payload else None
                ),
                from_cache=out.from_cache,
                error=out.error,
            )
        )
        if payload:
            for fp, hit in dict(payload.get("manifested", {})).items():
                if hit:
                    tags.setdefault(fp, []).append(cell.label)

    annotated = [
        replace(f, manifests=tuple(tags.get(f.fingerprint(), ())))
        if f.rule_id in PROBED_RULES
        else f
        for f in report
    ]
    new_report = LintReport(
        program=report.program,
        findings=annotated,
        rules_run=report.rules_run,
    ).sorted()
    return WhatifResult(report=new_report, cells=cells)
