"""One sweep over the global log, extracting everything the rules need.

The lint rules all want the same derived facts: who held which locks
when, in which order locks nest, where shared variables were touched and
under which protection, which unlocks had no matching lock.  Computing
them rule-by-rule would re-walk the trace once per rule; instead
:func:`sweep` performs a single time-ordered pass and returns a
:class:`LockAnalysis` the rules share (the engine caches it on the
:class:`~repro.analysis.lint.engine.LintContext`).

Modelling notes
---------------
* A lock is *held* between the **return** of its acquiring call (that is
  when the monitored program got it) and the **call** of its release.
* ``cond_wait``/``cond_timedwait`` atomically release their associated
  mutex (``obj2``) for the duration of the wait and re-acquire it before
  returning — the sweep mirrors that, so a thread parked in ``cond_wait``
  does not count as holding the mutex.
* Semaphores act as locks for the *lockset* (a ``sema_wait`` .. ``sema_post``
  span is protection evidence, the classic binary-semaphore-as-mutex
  pattern) but do not contribute lock-order edges: semaphore ordering is
  producer/consumer hand-off, not nesting discipline.
* A failed try-operation (status ``busy``) acquires nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core.events import (
    EventRecord,
    Phase,
    Primitive,
    SourceLocation,
    Status,
)
from repro.core.ids import SyncObjectId
from repro.core.trace import Trace

from repro.analysis.lint.hb import RaceDetector, VarRaces

__all__ = [
    "Acquisition",
    "Access",
    "LockOrderEdge",
    "HygieneEvent",
    "CondObservation",
    "LockUsage",
    "LockAnalysis",
    "sweep",
]

#: Acquire-side primitives, mapped to (lock kind relevant, exclusive?).
_ACQUIRES = {
    Primitive.MUTEX_LOCK: True,
    Primitive.MUTEX_TRYLOCK: True,
    Primitive.RW_WRLOCK: True,
    Primitive.RW_TRYWRLOCK: True,
    Primitive.RW_RDLOCK: False,
    Primitive.RW_TRYRDLOCK: False,
}

_RELEASES = (Primitive.MUTEX_UNLOCK, Primitive.RW_UNLOCK)

#: Lock kinds that participate in the lock-order graph.
ORDERED_KINDS = ("mutex", "rwlock")


@dataclass(frozen=True)
class Acquisition:
    """One live lock hold: who got it, where, and in what mode."""

    obj: SyncObjectId
    tid: int
    exclusive: bool
    acquired_at_us: int
    source: Optional[SourceLocation]
    event_index: Optional[int]


@dataclass(frozen=True)
class Access:
    """One shared-variable access with the accessor's protection set."""

    var: SyncObjectId
    tid: int
    is_write: bool
    time_us: int
    locks: FrozenSet[SyncObjectId]
    write_locks: FrozenSet[SyncObjectId]
    source: Optional[SourceLocation]
    event_index: Optional[int]


@dataclass(frozen=True)
class LockOrderEdge:
    """Witness that some thread acquired ``later`` while holding ``held``."""

    held: SyncObjectId
    later: SyncObjectId
    tid: int
    held_source: Optional[SourceLocation]
    held_event_index: Optional[int]
    later_source: Optional[SourceLocation]
    later_event_index: Optional[int]


@dataclass(frozen=True)
class HygieneEvent:
    """A lock-discipline violation spotted during the sweep."""

    kind: str  # "unlock-without-lock" | "join-holding-locks" | "wait-no-mutex"
    tid: int
    obj: Optional[SyncObjectId]
    held: Tuple[SyncObjectId, ...]
    source: Optional[SourceLocation]
    event_index: Optional[int]


@dataclass
class CondObservation:
    """Aggregate condition-variable behaviour over the whole trace."""

    waits: int = 0
    signals: int = 0
    broadcasts: int = 0
    timedwaits: int = 0
    #: (source, timeouts, calls) per timedwait call site
    timeout_sites: Dict[str, List[object]] = field(default_factory=dict)


#: (tid, source, event index) of a lock's longest hold.
HoldSite = Tuple[int, Optional[SourceLocation], Optional[int]]


@dataclass
class LockUsage:
    """Aggregate per-lock statistics (§4 contention metrics, trace-side)."""

    obj: SyncObjectId
    acquisitions: int = 0
    blocked_acquisitions: int = 0
    total_blocked_us: int = 0
    owners: set = field(default_factory=set)
    total_held_us: int = 0
    max_held_us: int = 0
    max_held_site: Optional[HoldSite] = None
    first_source: Optional[SourceLocation] = None
    first_event_index: Optional[int] = None


@dataclass
class LockAnalysis:
    """Everything one sweep of the log learned."""

    trace: Trace
    accesses: List[Access] = field(default_factory=list)
    edges: Dict[Tuple[SyncObjectId, SyncObjectId], LockOrderEdge] = field(
        default_factory=dict
    )
    hygiene: List[HygieneEvent] = field(default_factory=list)
    conds: Dict[SyncObjectId, CondObservation] = field(default_factory=dict)
    lock_usage: Dict[SyncObjectId, LockUsage] = field(default_factory=dict)
    #: happens-before classification of every conflicting access pair,
    #: per variable (see :mod:`repro.analysis.lint.hb`): variables whose
    #: conflicts are all fork/join/sema/cond-ordered do not appear
    races: Dict[SyncObjectId, VarRaces] = field(default_factory=dict)


def _is_ok(ret: EventRecord) -> bool:
    return (ret.status or Status.OK) is Status.OK


def sweep(trace: Trace, *, block_threshold_us: int = 0) -> LockAnalysis:
    """Single time-ordered pass over the global log.

    ``block_threshold_us``: an acquisition whose call→return span exceeds
    this counts as *blocked* (contended) — on the one-LWP monitored run an
    uncontended acquisition returns immediately, so any span beyond the
    probe cost means the owner had to run first.  Defaults to strictly
    positive spans when the trace carries no probe-overhead metadata.
    """
    if block_threshold_us <= 0:
        # two probe records (call+ret) are charged per operation; anything
        # beyond that is genuine waiting
        block_threshold_us = 4 * trace.meta.probe_overhead_us

    out = LockAnalysis(trace=trace)
    # the happens-before detector rides the same pass: the sweep feeds it
    # ordering edges (fork/join, lock hand-off, sema, condvar) and every
    # shared access, and it classifies conflicting pairs (hb.py)
    hb = RaceDetector()
    # per-thread: lock object -> live Acquisition (read-held rwlocks count
    # once per thread; the monitored uni-processor log can't nest them)
    held: Dict[int, Dict[SyncObjectId, Acquisition]] = {}
    # per-thread acquisition order (for witness "stacks")
    order: Dict[int, List[SyncObjectId]] = {}
    # mutexes parked by an open cond_wait, keyed by (tid, cond obj)
    parked: Dict[Tuple[int, SyncObjectId], Acquisition] = {}
    # open acquire calls, keyed by (tid, primitive, obj) -> call record index
    open_calls: Dict[Tuple[int, Primitive, SyncObjectId], Tuple[int, EventRecord]] = {}

    def thread_held(tid: int) -> Dict[SyncObjectId, Acquisition]:
        return held.setdefault(tid, {})

    def usage_for(obj: SyncObjectId) -> LockUsage:
        usage = out.lock_usage.get(obj)
        if usage is None:
            usage = out.lock_usage[obj] = LockUsage(obj=obj)
        return usage

    def acquire(
        tid: int,
        obj: SyncObjectId,
        *,
        exclusive: bool,
        rec: EventRecord,
        index: int,
        call: Optional[EventRecord],
        call_index: Optional[int],
    ) -> None:
        locks = thread_held(tid)
        src = (call.source if call is not None else None) or rec.source
        acq = Acquisition(
            obj=obj,
            tid=tid,
            exclusive=exclusive,
            acquired_at_us=rec.time_us,
            source=src,
            event_index=call_index if call_index is not None else index,
        )
        # lock-order edges: obj acquired while holding every live lock
        if obj.kind in ORDERED_KINDS:
            for prev in locks.values():
                if prev.obj.kind not in ORDERED_KINDS or prev.obj == obj:
                    continue
                key = (prev.obj, obj)
                if key not in out.edges:
                    out.edges[key] = LockOrderEdge(
                        held=prev.obj,
                        later=obj,
                        tid=tid,
                        held_source=prev.source,
                        held_event_index=prev.event_index,
                        later_source=src,
                        later_event_index=acq.event_index,
                    )
        locks[obj] = acq
        order.setdefault(tid, []).append(obj)
        usage = usage_for(obj)
        usage.acquisitions += 1
        usage.owners.add(tid)
        if usage.first_source is None:
            usage.first_source = src
            usage.first_event_index = acq.event_index
        if call is not None:
            span = rec.time_us - call.time_us
            if span > block_threshold_us:
                usage.blocked_acquisitions += 1
                usage.total_blocked_us += span

    def release(
        tid: int, obj: SyncObjectId, rec: EventRecord, index: int
    ) -> Optional[Acquisition]:
        locks = thread_held(tid)
        acq = locks.pop(obj, None)
        if acq is None:
            out.hygiene.append(
                HygieneEvent(
                    kind="unlock-without-lock",
                    tid=tid,
                    obj=obj,
                    held=tuple(locks),
                    source=rec.source,
                    event_index=index,
                )
            )
            return None
        seq = order.get(tid)
        if seq and obj in seq:
            seq.remove(obj)
        usage = usage_for(obj)
        held_us = rec.time_us - acq.acquired_at_us
        usage.total_held_us += held_us
        if held_us > usage.max_held_us:
            usage.max_held_us = held_us
            usage.max_held_site = (tid, acq.source, acq.event_index)
        return acq

    for index, rec in enumerate(trace):
        prim = rec.primitive
        tid = int(rec.tid)
        obj = rec.obj

        # ---- shared-variable accesses ---------------------------------
        if prim in (Primitive.SHARED_READ, Primitive.SHARED_WRITE):
            if rec.phase is Phase.CALL and obj is not None:
                locks = thread_held(tid)
                all_held = frozenset(locks)
                write_held = frozenset(
                    o for o, a in locks.items() if a.exclusive or o.kind == "sema"
                )
                access = Access(
                    var=obj,
                    tid=tid,
                    is_write=prim is Primitive.SHARED_WRITE,
                    time_us=rec.time_us,
                    locks=all_held,
                    write_locks=write_held,
                    source=rec.source,
                    event_index=index,
                )
                out.accesses.append(access)
                if access.is_write:
                    hb.write(access)
                else:
                    hb.read(access)
            continue

        # ---- lock acquisitions ----------------------------------------
        if prim in _ACQUIRES and obj is not None:
            if rec.phase is Phase.CALL:
                open_calls[(tid, prim, obj)] = (index, rec)
            elif _is_ok(rec):
                call_index, call = open_calls.pop((tid, prim, obj), (None, None))
                acquire(
                    tid,
                    obj,
                    exclusive=_ACQUIRES[prim],
                    rec=rec,
                    index=index,
                    call=call,
                    call_index=call_index,
                )
                hb.acquire_lock(tid, obj)
            else:
                open_calls.pop((tid, prim, obj), None)
            continue

        # ---- lock releases (the program stops relying on the lock at
        # the call, so hygiene/hold-times anchor there) ------------------
        if prim in _RELEASES and obj is not None:
            if rec.phase is Phase.CALL:
                release(tid, obj, rec, index)
                hb.release_lock(tid, obj)
            continue

        # ---- semaphores as protection spans ---------------------------
        if prim in (Primitive.SEMA_WAIT, Primitive.SEMA_TRYWAIT) and obj is not None:
            if rec.phase is Phase.RET and _is_ok(rec):
                thread_held(tid)[obj] = Acquisition(
                    obj=obj,
                    tid=tid,
                    exclusive=True,
                    acquired_at_us=rec.time_us,
                    source=rec.source,
                    event_index=index,
                )
                hb.sync_recv(tid, obj)
            continue
        if prim is Primitive.SEMA_POST and obj is not None:
            if rec.phase is Phase.CALL:
                # posting a sema this thread "holds" closes the protection
                # span; posting one it does not hold is normal hand-off
                thread_held(tid).pop(obj, None)
                hb.sync_send(tid, obj)
            continue

        # ---- condition variables --------------------------------------
        if prim in (Primitive.COND_WAIT, Primitive.COND_TIMEDWAIT):
            cond = obj if obj is not None else SyncObjectId("cond", "?")
            observation = out.conds.setdefault(cond, CondObservation())
            mutex = rec.obj2
            if rec.phase is Phase.CALL:
                observation.waits += 1
                if prim is Primitive.COND_TIMEDWAIT:
                    observation.timedwaits += 1
                locks = thread_held(tid)
                if mutex is None or mutex not in locks:
                    out.hygiene.append(
                        HygieneEvent(
                            kind="wait-no-mutex",
                            tid=tid,
                            obj=cond,
                            held=tuple(locks),
                            source=rec.source,
                            event_index=index,
                        )
                    )
                else:
                    # the wait atomically releases the mutex
                    parked[(tid, cond)] = locks.pop(mutex)
                    hb.release_lock(tid, mutex)
            else:
                if _is_ok(rec):
                    # a successful wake absorbs the signallers' pasts; a
                    # timeout saw no signal, so no edge
                    hb.sync_recv(tid, cond)
                acq = parked.pop((tid, cond), None)
                if acq is not None:
                    # re-acquired before the wait returns (even on timeout)
                    thread_held(tid)[acq.obj] = Acquisition(
                        obj=acq.obj,
                        tid=tid,
                        exclusive=True,
                        acquired_at_us=rec.time_us,
                        source=acq.source,
                        event_index=acq.event_index,
                    )
                    hb.acquire_lock(tid, acq.obj)
                if prim is Primitive.COND_TIMEDWAIT:
                    key = str(rec.source) if rec.source else str(cond)
                    site = observation.timeout_sites.setdefault(
                        key, [rec.source, 0, 0, index]
                    )
                    site[2] += 1
                    if rec.status is Status.TIMEOUT:
                        site[1] += 1
            continue
        if prim is Primitive.COND_SIGNAL and rec.phase is Phase.CALL:
            cond = obj if obj is not None else SyncObjectId("cond", "?")
            out.conds.setdefault(cond, CondObservation()).signals += 1
            hb.sync_send(tid, cond)
            continue
        if prim is Primitive.COND_BROADCAST and rec.phase is Phase.CALL:
            cond = obj if obj is not None else SyncObjectId("cond", "?")
            out.conds.setdefault(cond, CondObservation()).broadcasts += 1
            hb.sync_send(tid, cond)
            continue

        # ---- thread lifecycle: fork/join happens-before edges ----------
        if prim is Primitive.THR_CREATE:
            if rec.phase is Phase.RET and _is_ok(rec) and rec.target is not None:
                hb.fork(tid, int(rec.target))
            continue

        # ---- joins while holding locks --------------------------------
        if prim is Primitive.THR_JOIN:
            if rec.phase is Phase.CALL:
                locks = thread_held(tid)
                lock_like = tuple(o for o in locks if o.kind in ORDERED_KINDS)
                if lock_like:
                    out.hygiene.append(
                        HygieneEvent(
                            kind="join-holding-locks",
                            tid=tid,
                            obj=None,
                            held=lock_like,
                            source=rec.source,
                            event_index=index,
                        )
                    )
            elif _is_ok(rec) and rec.target is not None:
                # the joined thread's entire life happens-before here
                # (a wildcard join reaps an unknown thread: no edge)
                hb.join(tid, int(rec.target))
            continue

    out.races = hb.races
    return out
