"""Trace lint: static analysis of recorded runs, no simulation needed.

The engine reads the Recorder's log (a :class:`~repro.core.trace.Trace`)
and diagnoses synchronisation problems the Simulator/Visualizer pipeline
would never surface: data races (Eraser-style locksets), inverted lock
orderings (deadlock potential), condition-variable misuse, and lock
hygiene.  Entry point::

    from repro.analysis.lint import run_lint
    report = run_lint(trace)
    print(report.summary())

Findings serialise to JSON (:func:`render_json`), SARIF 2.1.0
(:func:`to_sarif`) and a text listing (:func:`render_text`), and the
Visualizer can overlay them on the flow graph.
"""

from repro.analysis.lint.engine import (
    LintContext,
    Rule,
    all_rules,
    register_rule,
    rule_by_id,
    run_lint,
)
from repro.analysis.lint.findings import Finding, LintReport, Severity, Site
from repro.analysis.lint.hb import RaceDetector, RacePair, VarRaces
from repro.analysis.lint.locks import LockAnalysis, sweep
from repro.analysis.lint.predictive import (
    WhatifCell,
    WhatifResult,
    probe_trace,
    whatif_lint,
)
from repro.analysis.lint.render import render_json, render_text
from repro.analysis.lint.sarif import sarif_json, to_sarif
from repro.analysis.lint.witness import (
    Witness,
    WitnessReplay,
    find_witness,
    replay_witness,
    synthesize_deadlock_witness,
    synthesize_race_witness,
)

__all__ = [
    "LintContext",
    "Rule",
    "all_rules",
    "register_rule",
    "rule_by_id",
    "run_lint",
    "Finding",
    "LintReport",
    "Severity",
    "Site",
    "LockAnalysis",
    "sweep",
    "RaceDetector",
    "RacePair",
    "VarRaces",
    "Witness",
    "WitnessReplay",
    "find_witness",
    "replay_witness",
    "synthesize_deadlock_witness",
    "synthesize_race_witness",
    "WhatifCell",
    "WhatifResult",
    "probe_trace",
    "whatif_lint",
    "render_json",
    "render_text",
    "sarif_json",
    "to_sarif",
]
