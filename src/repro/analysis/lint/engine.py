"""The pluggable rule engine behind ``vppb lint``.

A rule is a class with an id (``VPPB-R001`` ...), a default severity, a
title/rationale pair (surfaced in SARIF rule metadata and ``docs/lint.md``)
and a ``run(ctx)`` method yielding :class:`~repro.analysis.lint.findings.Finding`.
Registering is one decorator::

    @register_rule
    class MyRule(Rule):
        id = "VPPB-R010"
        severity = Severity.WARNING
        title = "..."
        rationale = "..."

        def run(self, ctx):
            yield ...

The :class:`LintContext` hands every rule the same trace plus the shared
single-sweep :class:`~repro.analysis.lint.locks.LockAnalysis`, so adding
a rule costs no extra pass over the log.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Type

from repro.core.errors import AnalysisError
from repro.core.trace import Trace

from repro.analysis.lint.findings import Finding, LintReport, Severity
from repro.analysis.lint.locks import LockAnalysis, sweep

__all__ = [
    "Rule",
    "register_rule",
    "all_rules",
    "rule_by_id",
    "LintContext",
    "run_lint",
]


class Rule:
    """Base class for lint rules (subclass and :func:`register_rule`)."""

    id: str = ""
    severity: Severity = Severity.WARNING
    title: str = ""
    rationale: str = ""

    def run(self, ctx: "LintContext") -> Iterable[Finding]:  # pragma: no cover
        raise NotImplementedError

    def finding(self, message: str, **kw) -> Finding:
        """Build a finding stamped with this rule's id and severity."""
        kw.setdefault("severity", self.severity)
        return Finding(rule_id=self.id, message=message, **kw)


_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id!r}")
    _REGISTRY[cls.id] = cls
    return cls


def _ensure_loaded() -> None:
    if _REGISTRY:
        return
    # importing the rule modules registers their rules
    from repro.analysis.lint import rules  # noqa: F401


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in id order."""
    _ensure_loaded()
    return [cls() for _, cls in sorted(_REGISTRY.items())]


def rule_by_id(rule_id: str) -> Rule:
    _ensure_loaded()
    try:
        return _REGISTRY[_normalize_id(rule_id)]()
    except KeyError:
        raise AnalysisError(
            f"unknown lint rule {rule_id!r}; have {sorted(_REGISTRY)}"
        ) from None


def _normalize_id(rule_id: str) -> str:
    """Accept ``VPPB-R001``, ``R001`` and ``r001`` spellings."""
    rid = rule_id.strip().upper()
    if rid.startswith("R") and not rid.startswith("VPPB-"):
        rid = f"VPPB-{rid}"
    return rid


class LintContext:
    """What a rule gets to look at: the trace plus shared derived views.

    ``salvage`` is the :class:`~repro.recorder.salvage.SalvageReport`
    when the trace came through the lenient loader (None for a cleanly
    parsed log) — the incomplete-input rule reads it.
    """

    def __init__(self, trace: Trace, *, salvage=None):
        self.trace = trace
        self.salvage = salvage
        self._per_thread = None
        self._analysis: Optional[LockAnalysis] = None

    @property
    def per_thread(self):
        """The fig. 4 per-thread event lists (cached)."""
        if self._per_thread is None:
            self._per_thread = self.trace.per_thread()
        return self._per_thread

    @property
    def analysis(self) -> LockAnalysis:
        """The single-sweep lock/access/cond analysis (cached)."""
        if self._analysis is None:
            self._analysis = sweep(self.trace)
        return self._analysis


def _selected_rules(
    select: Optional[Sequence[str]], ignore: Optional[Sequence[str]]
) -> List[Rule]:
    rules = all_rules()
    if select:
        wanted = {_normalize_id(r) for r in select}
        unknown = wanted - {r.id for r in rules}
        if unknown:
            raise AnalysisError(
                f"unknown lint rule(s) {sorted(unknown)}; "
                f"have {sorted(r.id for r in rules)}"
            )
        rules = [r for r in rules if r.id in wanted]
    if ignore:
        dropped = {_normalize_id(r) for r in ignore}
        rules = [r for r in rules if r.id not in dropped]
    return rules


def run_lint(
    trace: Trace,
    *,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    salvage=None,
) -> LintReport:
    """Run the (filtered) rule set over a recorded trace.

    Purely static: no simulation happens; the engine reads the log the
    Recorder produced and nothing else.  Returns a sorted
    :class:`~repro.analysis.lint.findings.LintReport`.  Pass the
    :class:`~repro.recorder.salvage.SalvageReport` as *salvage* when the
    trace came through the lenient loader so the incomplete-input rule
    can annotate the report.
    """
    rules = _selected_rules(select, ignore)
    ctx = LintContext(trace, salvage=salvage)
    findings: List[Finding] = []
    for rule in rules:
        findings.extend(rule.run(ctx))
    report = LintReport(
        program=trace.meta.program,
        findings=findings,
        rules_run=tuple(r.id for r in rules),
    )
    return report.sorted()
