"""Human-readable rendering of a lint report.

Compiler-style one-liners (``file:line: severity: [rule] message``) with
indented witness sites, a per-rule explanation on first occurrence, and
a closing summary line — the ``vppb lint`` default output.
"""

from __future__ import annotations

import json
from typing import List

from repro.analysis.lint.engine import rule_by_id
from repro.analysis.lint.findings import Finding, LintReport

__all__ = ["render_text", "render_json"]


def _where(finding: Finding) -> str:
    if finding.source is not None:
        return f"{finding.source.file}:{finding.source.line}"
    if finding.obj is not None:
        return str(finding.obj)
    return "<trace>"


def render_text(report: LintReport, *, explain: bool = True) -> str:
    """The report as a plain-text diagnostic listing."""
    lines: List[str] = []
    explained: set = set()
    for finding in report.sorted().findings:
        lines.append(
            f"{_where(finding)}: {finding.severity.value}: "
            f"[{finding.rule_id}] {finding.message}"
        )
        for site in finding.related:
            lines.append(f"    see: {site.describe()}")
        if finding.witness is not None:
            digest = str(finding.witness.get("digest", ""))[:12]
            replay = finding.witness.get("replay", "")
            lines.append(f"    witness: {digest} (replay: {replay})")
        if finding.manifests is not None:
            shown = (
                ", ".join(finding.manifests)
                if finding.manifests
                else "never (no probed config reproduced it)"
            )
            lines.append(f"    manifests: {shown}")
        if explain and finding.rule_id not in explained:
            explained.add(finding.rule_id)
            try:
                rule = rule_by_id(finding.rule_id)
            except Exception:
                rule = None
            if rule is not None and rule.rationale:
                lines.append(f"    why: {rule.rationale}")
    if lines:
        lines.append("")
    lines.append(report.summary())
    return "\n".join(lines)


def render_json(report: LintReport, *, indent: int = 2) -> str:
    return json.dumps(report.to_dict(), indent=indent)
