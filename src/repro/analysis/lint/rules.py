"""The built-in rule catalog (``VPPB-R001`` ... ``VPPB-R009``).

Each rule consumes the shared single-sweep
:class:`~repro.analysis.lint.locks.LockAnalysis` and yields findings;
``docs/lint.md`` renders this module's metadata as the user-facing rule
catalog.  Severities follow one principle: **error** means the recorded
run demonstrably violated a synchronisation contract (a race, a latent
deadlock cycle, an unpaired unlock); **warning** means the run was legal
but fragile; **note** is a tuning observation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.ids import SyncObjectId

from repro.analysis.lint.engine import LintContext, Rule, register_rule
from repro.analysis.lint.findings import Finding, Severity, Site
from repro.analysis.lint.hb import VarRaces
from repro.analysis.lint.locks import LockOrderEdge
from repro.analysis.lint.witness import (
    synthesize_deadlock_witness,
    synthesize_race_witness,
)

__all__ = [
    "LocksetRaceRule",
    "LockOrderCycleRule",
    "CondWaitWithoutMutexRule",
    "SignalWithoutWaiterRule",
    "TimedwaitTimeoutHotspotRule",
    "UnlockWithoutLockRule",
    "JoinHoldingLockRule",
    "UncontendedLockRule",
    "PathologicalHoldRule",
    "IncompleteInputRule",
]


def _fmt_locks(locks: Iterable[SyncObjectId]) -> str:
    names = sorted(str(o) for o in locks)
    return "{" + ", ".join(names) + "}" if names else "no locks"


# ---------------------------------------------------------------------------
# VPPB-R001 — Eraser-style lockset race detection
# ---------------------------------------------------------------------------


@register_rule
class LocksetRaceRule(Rule):
    """Hybrid lockset ∩ happens-before race detection.

    The Eraser lockset algorithm (Savage et al., 1997) stays the *gate*:
    per variable the candidate set C(v) starts as the accessor's full
    protection set and is intersected on every access once a second
    thread touches the variable; the virgin → exclusive → shared →
    shared-modified state machine suppresses initialisation and
    read-only patterns, and a write refines with *write-capable* locks
    only.  A gated variable is then judged by the happens-before
    detector (:mod:`repro.analysis.lint.hb`):

    * some conflicting pair is concurrent even under mutex hand-off
      edges → **error**, with a replayable witness schedule;
    * pairs are concurrent under fork/join/sema/cond edges but the
      recorded lock hand-offs ordered every one → **warning** (the
      ordering is this interleaving's accident, not the program's);
    * every conflicting pair is fork/join/sema/cond-ordered → no
      finding at all (the classic Eraser false positive, eliminated).
    """

    id = "VPPB-R001"
    severity = Severity.ERROR
    title = "shared variable accessed without consistent locking (data race)"
    rationale = (
        "Two threads touched the same shared variable, at least one wrote, "
        "and no lock was held across all accesses — the schedule, not the "
        "program, decides the outcome.  Happens-before analysis sets the "
        "severity: error when a conflicting pair is provably concurrent "
        "(with a replayable witness schedule), warning when only this "
        "run's lock hand-off order kept the accesses apart."
    )

    _VIRGIN, _EXCLUSIVE, _SHARED, _SHARED_MODIFIED = range(4)

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        states: Dict[SyncObjectId, int] = {}
        owners: Dict[SyncObjectId, int] = {}
        candidates: Dict[SyncObjectId, Set[SyncObjectId]] = {}
        reported: Set[SyncObjectId] = set()

        for acc in ctx.analysis.accesses:
            var = acc.var
            state = states.get(var, self._VIRGIN)
            protection = acc.write_locks if acc.is_write else acc.locks

            if state == self._VIRGIN:
                states[var] = self._EXCLUSIVE
                owners[var] = acc.tid
            elif state == self._EXCLUSIVE and acc.tid == owners[var]:
                pass  # initialisation window: no refinement (Eraser)
            else:
                if state == self._EXCLUSIVE:
                    # second thread arrives: candidate set becomes this
                    # accessor's protection, further accesses intersect.
                    # A read moves to SHARED even after first-thread writes
                    # (Eraser: init-then-publish is benign); only a write
                    # enables reporting.
                    candidates[var] = set(protection)
                    states[var] = (
                        self._SHARED_MODIFIED if acc.is_write else self._SHARED
                    )
                else:
                    candidates[var] &= protection
                    if acc.is_write:
                        states[var] = self._SHARED_MODIFIED
                if (
                    states[var] == self._SHARED_MODIFIED
                    and not candidates[var]
                    and var not in reported
                ):
                    reported.add(var)
                    finding = self._judge(ctx, var)
                    if finding is not None:
                        yield finding

    def _judge(self, ctx: LintContext, var: SyncObjectId) -> Optional[Finding]:
        """Happens-before verdict for a variable the lockset gated."""
        info = ctx.analysis.races.get(var)
        if info is None or not info.pairs:
            # every conflicting pair is fork/join/sema/cond-ordered: no
            # schedule reorders them — the lockset report was wrong
            return None
        pair = info.best_pair()
        a, b = pair.earlier, pair.later
        if pair.full_concurrent:
            severity = Severity.ERROR
            verdict = (
                "no recorded synchronisation orders the accesses — "
                "concurrent under happens-before"
            )
            raw = synthesize_race_witness(ctx.trace, pair)
            witness = raw.to_dict() if raw is not None else None
        else:
            severity = Severity.WARNING
            verdict = (
                "this run's mutex hand-off order kept the accesses apart, "
                "but nothing forces that order — fragile, not yet proven "
                "concurrent"
            )
            witness = None
        related = [
            Site(
                label=f"{'write' if a.is_write else 'read'} under "
                f"{_fmt_locks(a.locks)}",
                tid=a.tid,
                source=a.source,
                event_index=a.event_index,
            )
        ]
        return self.finding(
            f"data race on {var}: {'write' if b.is_write else 'read'} by "
            f"T{b.tid} holding {_fmt_locks(b.locks)} conflicts with "
            f"T{a.tid} holding {_fmt_locks(a.locks)}; "
            f"no lock protects every access; {verdict}",
            severity=severity,
            tid=b.tid,
            obj=var,
            source=b.source,
            event_index=b.event_index,
            related=tuple(related),
            witness=witness,
        )


# ---------------------------------------------------------------------------
# VPPB-R002 — lock-order graph cycles (deadlock potential)
# ---------------------------------------------------------------------------


@register_rule
class LockOrderCycleRule(Rule):
    """Cycle detection over the acquired-while-holding graph.

    The recorded run did not deadlock (it terminated and produced a log),
    but an ABBA ordering means an unlucky schedule can: that is the
    paper's whole premise — the one recorded schedule stands in for the
    many the multiprocessor will produce.
    """

    id = "VPPB-R002"
    severity = Severity.ERROR
    title = "inconsistent lock acquisition order (deadlock potential)"
    rationale = (
        "Thread A acquires L1 then L2 while thread B acquires L2 then L1; "
        "if both hold their first lock at once, neither can proceed.  The "
        "recorded schedule survived by luck, other schedules will not."
    )

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        edges = ctx.analysis.edges
        graph: Dict[SyncObjectId, List[SyncObjectId]] = {}
        for held, later in edges:
            graph.setdefault(held, []).append(later)
        for cycle in _elementary_cycles(graph):
            witnesses = []
            for i, node in enumerate(cycle):
                succ = cycle[(i + 1) % len(cycle)]
                edge = edges[(node, succ)]
                witnesses.append(edge)
            yield self._report(cycle, witnesses, ctx)

    def _report(
        self,
        cycle: List[SyncObjectId],
        witnesses: List[LockOrderEdge],
        ctx: LintContext,
    ) -> Finding:
        chain = " -> ".join(str(o) for o in cycle + [cycle[0]])
        threads = sorted({w.tid for w in witnesses})
        related = []
        for w in witnesses:
            held_at = f" (held since {w.held_source})" if w.held_source else ""
            related.append(
                Site(
                    label=f"T{w.tid} acquired {w.later} while holding "
                    f"{w.held}{held_at}",
                    tid=w.tid,
                    source=w.later_source,
                    event_index=w.later_event_index,
                )
            )
        first = witnesses[0]
        raw = synthesize_deadlock_witness(ctx.trace, witnesses)
        return self.finding(
            f"lock-order cycle {chain} between threads "
            f"{', '.join(f'T{t}' for t in threads)}: the orderings are "
            "inverted, so an adverse schedule deadlocks",
            tid=first.tid,
            obj=first.later,
            source=first.later_source,
            event_index=first.later_event_index,
            related=tuple(related),
            witness=raw.to_dict() if raw is not None else None,
        )


def _elementary_cycles(
    graph: Dict[SyncObjectId, List[SyncObjectId]]
) -> List[List[SyncObjectId]]:
    """Distinct elementary cycles of a small digraph (DFS, deduplicated
    by canonical rotation — lock graphs have a handful of nodes)."""
    cycles: List[List[SyncObjectId]] = []
    seen: Set[Tuple[str, ...]] = set()

    def canonical(path: List[SyncObjectId]) -> Tuple[str, ...]:
        names = [str(o) for o in path]
        pivot = min(range(len(names)), key=lambda i: names[i])
        return tuple(names[pivot:] + names[:pivot])

    def dfs(start: SyncObjectId, node: SyncObjectId, path: List[SyncObjectId]):
        for succ in graph.get(node, ()):
            if succ == start:
                key = canonical(path)
                if key not in seen:
                    seen.add(key)
                    cycles.append(list(path))
            elif succ not in path and str(succ) > str(start):
                # only extend through nodes "after" start: each cycle is
                # then found exactly once, rooted at its smallest node
                path.append(succ)
                dfs(start, succ, path)
                path.pop()

    for start in sorted(graph, key=str):
        dfs(start, start, [start])
    return cycles


# ---------------------------------------------------------------------------
# VPPB-R003..R005 — condition-variable misuse
# ---------------------------------------------------------------------------


@register_rule
class CondWaitWithoutMutexRule(Rule):
    id = "VPPB-R003"
    severity = Severity.ERROR
    title = "cond_wait without holding the associated mutex"
    rationale = (
        "Waiting on a condition variable without the mutex that guards its "
        "predicate races the predicate check against the signaller: the "
        "wake-up can be consumed between test and sleep (lost wake-up)."
    )

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        for ev in ctx.analysis.hygiene:
            if ev.kind != "wait-no-mutex":
                continue
            yield self.finding(
                f"T{ev.tid} waits on {ev.obj} without holding the associated "
                f"mutex (held at the call: {_fmt_locks(ev.held)})",
                tid=ev.tid,
                obj=ev.obj,
                source=ev.source,
                event_index=ev.event_index,
            )


@register_rule
class SignalWithoutWaiterRule(Rule):
    id = "VPPB-R004"
    severity = Severity.WARNING
    title = "signal/broadcast on a condition variable nobody ever waits on"
    rationale = (
        "A condition variable that is signalled but never waited on in the "
        "whole monitored run is either dead code or — worse — the waiter "
        "exists on another path and the signal arrives before it sleeps."
    )

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        for cond, obs in sorted(ctx.analysis.conds.items(), key=lambda kv: str(kv[0])):
            wakes = obs.signals + obs.broadcasts
            if wakes and obs.waits == 0:
                yield self.finding(
                    f"{cond} is signalled {wakes} time(s) but no thread ever "
                    "waits on it in the recorded run",
                    obj=cond,
                )


@register_rule
class TimedwaitTimeoutHotspotRule(Rule):
    id = "VPPB-R005"
    severity = Severity.WARNING
    title = "cond_timedwait timeout hot spot"
    rationale = (
        "A call site whose timed waits keep expiring is polling: the "
        "timeout, not a signal, paces the thread.  On more processors the "
        "polling interval becomes the bottleneck (§4 blocking metrics)."
    )

    #: A site is hot when it timed out at least this many times ...
    min_timeouts = 3
    #: ... and at least this fraction of its timed waits expired.
    min_ratio = 0.5

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        for cond, obs in sorted(ctx.analysis.conds.items(), key=lambda kv: str(kv[0])):
            for site in obs.timeout_sites.values():
                source, timeouts, calls, index = site
                if timeouts >= self.min_timeouts and timeouts / max(1, calls) >= self.min_ratio:
                    yield self.finding(
                        f"cond_timedwait on {cond} timed out {timeouts} of "
                        f"{calls} time(s) at this site — timeout-paced "
                        "polling loop",
                        obj=cond,
                        source=source,
                        event_index=index,
                    )


# ---------------------------------------------------------------------------
# VPPB-R006..R009 — lock hygiene
# ---------------------------------------------------------------------------


@register_rule
class UnlockWithoutLockRule(Rule):
    id = "VPPB-R006"
    severity = Severity.ERROR
    title = "unlock of a lock the thread does not hold"
    rationale = (
        "Unlocking a mutex another thread owns (or that nobody holds) is "
        "undefined behaviour on Solaris and corrupts the waiter queue; it "
        "usually means the lock/unlock pairing is split across branches."
    )

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        for ev in ctx.analysis.hygiene:
            if ev.kind != "unlock-without-lock":
                continue
            yield self.finding(
                f"T{ev.tid} unlocks {ev.obj} without holding it "
                f"(held at the call: {_fmt_locks(ev.held)})",
                tid=ev.tid,
                obj=ev.obj,
                source=ev.source,
                event_index=ev.event_index,
            )


@register_rule
class JoinHoldingLockRule(Rule):
    id = "VPPB-R007"
    severity = Severity.WARNING
    title = "thr_join while holding a lock"
    rationale = (
        "Joining a thread can block indefinitely; doing so while holding a "
        "lock extends the hold across the joined thread's whole remaining "
        "lifetime — and deadlocks outright if the joined thread needs it."
    )

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        for ev in ctx.analysis.hygiene:
            if ev.kind != "join-holding-locks":
                continue
            yield self.finding(
                f"T{ev.tid} calls thr_join while holding "
                f"{_fmt_locks(ev.held)}",
                tid=ev.tid,
                source=ev.source,
                event_index=ev.event_index,
            )


@register_rule
class UncontendedLockRule(Rule):
    id = "VPPB-R008"
    severity = Severity.NOTE
    title = "lock never contended (candidate for removal)"
    rationale = (
        "A lock only ever taken by one thread protects nothing shared; "
        "each acquisition still pays the §3.2 synchronisation cost.  "
        "Removing it (or narrowing its scope) is free speed-up."
    )

    #: Ignore locks acquired fewer times than this (too little evidence).
    min_acquisitions = 4

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        for obj, usage in sorted(
            ctx.analysis.lock_usage.items(), key=lambda kv: str(kv[0])
        ):
            if obj.kind not in ("mutex", "rwlock"):
                continue
            if usage.acquisitions < self.min_acquisitions:
                continue
            if len(usage.owners) == 1:
                owner = next(iter(usage.owners))
                yield self.finding(
                    f"{obj} was acquired {usage.acquisitions} time(s), all "
                    f"by T{owner} — never shared, candidate for removal",
                    tid=owner,
                    obj=obj,
                    source=usage.first_source,
                    event_index=usage.first_event_index,
                )


@register_rule
class PathologicalHoldRule(Rule):
    id = "VPPB-R009"
    severity = Severity.WARNING
    title = "pathological lock hold time"
    rationale = (
        "One critical section holding a shared lock for a large fraction "
        "of the run serialises every other thread behind it — the §5 "
        "producer/consumer bottleneck in its purest form."
    )

    #: A single hold spanning at least this fraction of the trace is
    #: pathological (only for locks more than one thread uses).
    max_hold_fraction = 0.25

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        duration = ctx.trace.duration_us
        if duration <= 0:
            return
        for obj, usage in sorted(
            ctx.analysis.lock_usage.items(), key=lambda kv: str(kv[0])
        ):
            if obj.kind not in ("mutex", "rwlock") or len(usage.owners) < 2:
                continue
            frac = usage.max_held_us / duration
            if frac >= self.max_hold_fraction and usage.max_held_site:
                tid, source, index = usage.max_held_site
                yield self.finding(
                    f"T{tid} held {obj} for "
                    f"{usage.max_held_us / 1e6:.3f}s — {frac:.0%} of the "
                    f"monitored run — while {len(usage.owners)} threads "
                    "share it",
                    tid=tid,
                    obj=obj,
                    source=source,
                    event_index=index,
                )


# ---------------------------------------------------------------------------
# VPPB-R010 — salvaged input
# ---------------------------------------------------------------------------


@register_rule
class IncompleteInputRule(Rule):
    id = "VPPB-R010"
    severity = Severity.NOTE
    title = "trace was salvaged; lint ran on an incomplete log"
    rationale = (
        "The log did not parse cleanly and the salvage pipeline repaired "
        "or dropped records before analysis.  Every finding still points "
        "at real recorded events, but silence proves nothing: a hazard "
        "may have lived in the damaged region."
    )

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        report = ctx.salvage
        if report is None or report.clean:
            return
        counts = ", ".join(
            f"{n}x {kind}" for kind, n in sorted(report.counts_by_kind().items())
        )
        yield self.finding(
            f"input was salvaged: kept {report.records_kept} of "
            f"{report.records_parsed} parsed records over "
            f"{report.total_lines} lines ({len(report.repairs)} repairs: "
            f"{counts}) — findings are valid, absence of findings is not",
        )
