"""Happens-before over the recorded log: dual vector clocks, FastTrack epochs.

The Eraser lockset (VPPB-R001) reasons about *protection*; this module
reasons about *ordering*.  The two answer different failure modes of a
pure lockset analysis:

* **False positives** — accesses ordered by ``thr_create``/``thr_join``,
  a semaphore hand-off, or a condvar signal→wake need no common lock:
  no schedule can reorder them.  The lockset still empties and Eraser
  reports; happens-before proves the report wrong.
* **Severity** — an empty lockset where every recorded conflict happens
  to be ordered by mutex release→acquire is *fragile* (the ordering is
  an accident of this interleaving, another schedule drops it), while a
  conflict no recorded synchronisation orders is a demonstrable race.

So the detector keeps **two** happens-before relations per thread:

``hard``
    fork/join + semaphore post→wait + condvar signal→wake edges — the
    orderings *every* schedule preserves (they gate thread existence or
    carry a counted token).
``full``
    ``hard`` plus mutex/rwlock release→acquire edges — the orderings
    *this recorded* schedule exhibited.

A conflicting access pair (same variable, different threads, at least
one write) is classified:

* concurrent under ``full``  → nothing the program did orders them: an
  **error**-grade race, and a witness schedule can exhibit it;
* ordered under ``full`` but concurrent under ``hard`` → lock hand-off
  ordered them *this time*: **warning** grade;
* ordered under ``hard`` → benign; the pair is never recorded at all
  (this is what deletes the fork/join false positives).

Per-variable state follows FastTrack (Flanagan & Freund, 2009): the last
write is one epoch, reads adaptively escalate from a single epoch to a
per-thread vector only when genuinely concurrent reads appear, and a
same-epoch re-access is a constant-time no-op.  The detector is driven
by :func:`repro.analysis.lint.locks.sweep` so the whole thing stays one
pass over the log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.ids import SyncObjectId

__all__ = ["RaceDetector", "RacePair", "VarRaces"]

#: A vector clock: thread id -> logical time.  Plain dicts: the sweep
#: touches one per sync event, so construction cost matters.
VC = Dict[int, int]


def _join(into: VC, other: VC) -> None:
    for tid, clk in other.items():
        if into.get(tid, 0) < clk:
            into[tid] = clk


@dataclass(frozen=True)
class RacePair:
    """One recorded conflicting access pair and its ordering class.

    ``earlier``/``later`` are :class:`~repro.analysis.lint.locks.Access`
    records in log order.  ``full_concurrent`` is True when not even the
    recorded lock hand-offs order the two accesses — the error tier,
    and the pair a witness schedule can invert.
    """

    earlier: object  # Access
    later: object  # Access
    full_concurrent: bool


@dataclass
class VarRaces:
    """Every hard-concurrent conflicting pair recorded for one variable."""

    var: SyncObjectId
    pairs: List[RacePair] = field(default_factory=list)

    @property
    def any_full_concurrent(self) -> bool:
        return any(p.full_concurrent for p in self.pairs)

    def best_pair(self) -> Optional[RacePair]:
        """The pair to report: a full-concurrent one when any exists."""
        for p in self.pairs:
            if p.full_concurrent:
                return p
        return self.pairs[0] if self.pairs else None


class _VarState:
    """FastTrack per-variable access summary."""

    __slots__ = (
        "write_tid", "write_hard", "write_full", "write_access",
        "read_epoch", "reads",
    )

    def __init__(self) -> None:
        self.write_tid: Optional[int] = None
        self.write_hard = 0
        self.write_full = 0
        self.write_access = None
        #: single-reader fast path: (tid, hard, full, access) or None
        self.read_epoch: Optional[tuple] = None
        #: escalated form: tid -> (hard, full, access)
        self.reads: Optional[Dict[int, tuple]] = None


#: Cap on recorded pairs per variable per tier — enough for witnesses
#: and reporting, bounded against pathological all-racy traces.
_MAX_PAIRS_PER_TIER = 4


class RaceDetector:
    """Vector-clock happens-before driven by the lock sweep.

    The sweep calls the edge hooks (`fork`, `join`, `acquire_lock`, ...)
    as it walks the log and `read`/`write` for every shared access; the
    detector accumulates :class:`VarRaces` in :attr:`races`.
    """

    def __init__(self) -> None:
        self._hard: Dict[int, VC] = {}
        self._full: Dict[int, VC] = {}
        #: mutex/rwlock release clocks (full relation only)
        self._lock_vc: Dict[SyncObjectId, VC] = {}
        #: sema/cond accumulators: obj -> (hard VC, full VC)
        self._sync_vc: Dict[SyncObjectId, Tuple[VC, VC]] = {}
        self._vars: Dict[SyncObjectId, _VarState] = {}
        self.races: Dict[SyncObjectId, VarRaces] = {}

    # -- clock plumbing --------------------------------------------------

    def _clocks(self, tid: int) -> Tuple[VC, VC]:
        hard = self._hard.get(tid)
        if hard is None:
            # a thread first seen mid-log (synthetic traces, salvaged
            # prefixes): born concurrent with everyone — conservative
            # toward reporting, never toward suppression
            hard = self._hard[tid] = {tid: 1}
            self._full[tid] = {tid: 1}
        return hard, self._full[tid]

    def _tick(self, tid: int, *, hard: bool) -> None:
        h, f = self._clocks(tid)
        f[tid] = f.get(tid, 0) + 1
        if hard:
            h[tid] = h.get(tid, 0) + 1

    # -- happens-before edge hooks (called by locks.sweep) ---------------

    def fork(self, parent: int, child: int) -> None:
        """``thr_create`` returned: the child inherits the parent's past."""
        ph, pf = self._clocks(parent)
        ch = dict(ph)
        cf = dict(pf)
        ch[child] = ch.get(child, 0) + 1
        cf[child] = cf.get(child, 0) + 1
        self._hard[child] = ch
        self._full[child] = cf
        self._tick(parent, hard=True)

    def join(self, parent: int, child: int) -> None:
        """``thr_join`` returned: the child's whole life precedes here."""
        child_h = self._hard.get(child)
        if child_h is None:
            return
        ph, pf = self._clocks(parent)
        _join(ph, child_h)
        _join(pf, self._full[child])

    def release_lock(self, tid: int, obj: SyncObjectId) -> None:
        """Mutex/rwlock unlock: publish into the lock's clock (full only)."""
        _, f = self._clocks(tid)
        vc = self._lock_vc.get(obj)
        if vc is None:
            vc = self._lock_vc[obj] = {}
        _join(vc, f)
        self._tick(tid, hard=False)

    def acquire_lock(self, tid: int, obj: SyncObjectId) -> None:
        """Mutex/rwlock acquire: absorb the last release (full only)."""
        vc = self._lock_vc.get(obj)
        if vc:
            _, f = self._clocks(tid)
            _join(f, vc)

    def sync_send(self, tid: int, obj: SyncObjectId) -> None:
        """``sema_post`` / ``cond_signal`` / ``cond_broadcast``: a hard edge
        source — the token/wake carries this thread's past to the waiter."""
        h, f = self._clocks(tid)
        pair = self._sync_vc.get(obj)
        if pair is None:
            pair = self._sync_vc[obj] = ({}, {})
        _join(pair[0], h)
        _join(pair[1], f)
        self._tick(tid, hard=True)

    def sync_recv(self, tid: int, obj: SyncObjectId) -> None:
        """``sema_wait`` / ``cond_wait`` returned OK: absorb the senders."""
        pair = self._sync_vc.get(obj)
        if pair:
            h, f = self._clocks(tid)
            _join(h, pair[0])
            _join(f, pair[1])

    # -- access checks ----------------------------------------------------

    def write(self, access) -> None:
        tid = access.tid
        h, f = self._clocks(tid)
        eh, ef = h.get(tid, 0), f.get(tid, 0)
        st = self._vars.get(access.var)
        if st is None:
            st = self._vars[access.var] = _VarState()
        elif st.write_tid == tid and st.write_hard == eh:
            # same-epoch rewrite: every conflict was checked last time
            st.write_access = access
            return
        else:
            self._check_write(st, access, tid, h, f)
        st.write_tid = tid
        st.write_hard = eh
        st.write_full = ef
        st.write_access = access
        # reads before this write were just checked; later reads open
        # fresh state (FastTrack's read-clear on write)
        st.read_epoch = None
        st.reads = None

    def read(self, access) -> None:
        tid = access.tid
        h, f = self._clocks(tid)
        eh, ef = h.get(tid, 0), f.get(tid, 0)
        st = self._vars.get(access.var)
        if st is None:
            st = self._vars[access.var] = _VarState()
        # same-epoch re-read: already checked against this write
        if st.reads is not None:
            prev = st.reads.get(tid)
            if prev is not None and prev[0] == eh:
                return
        elif st.read_epoch is not None and st.read_epoch[0] == tid and st.read_epoch[1] == eh:
            return
        # read-vs-last-write check
        if (
            st.write_tid is not None
            and st.write_tid != tid
            and st.write_hard > h.get(st.write_tid, 0)
        ):
            self._record(
                access.var,
                st.write_access,
                access,
                st.write_full > f.get(st.write_tid, 0),
            )
        # adaptive read state
        entry = (eh, ef, access)
        if st.reads is not None:
            st.reads[tid] = entry
        elif st.read_epoch is None or st.read_epoch[0] == tid:
            st.read_epoch = (tid, eh, ef, access)
        else:
            prev_tid, ph, pf, pacc = st.read_epoch
            st.reads = {prev_tid: (ph, pf, pacc), tid: entry}
            st.read_epoch = None

    def _check_write(self, st: _VarState, access, tid: int, h: VC, f: VC) -> None:
        # write-vs-last-write
        if (
            st.write_tid is not None
            and st.write_tid != tid
            and st.write_hard > h.get(st.write_tid, 0)
        ):
            self._record(
                access.var,
                st.write_access,
                access,
                st.write_full > f.get(st.write_tid, 0),
            )
        # write-vs-reads
        if st.reads is not None:
            items = st.reads.items()
        elif st.read_epoch is not None:
            rt, rh, rf, racc = st.read_epoch
            items = ((rt, (rh, rf, racc)),)
        else:
            items = ()
        for rtid, (rh, rf, racc) in items:
            if rtid != tid and rh > h.get(rtid, 0):
                self._record(access.var, racc, access, rf > f.get(rtid, 0))

    def _record(self, var: SyncObjectId, earlier, later, full_concurrent: bool) -> None:
        info = self.races.get(var)
        if info is None:
            info = self.races[var] = VarRaces(var=var)
        tier_count = sum(
            1 for p in info.pairs if p.full_concurrent == full_concurrent
        )
        if tier_count >= _MAX_PAIRS_PER_TIER:
            return
        info.pairs.append(
            RacePair(earlier=earlier, later=later, full_concurrent=full_concurrent)
        )
