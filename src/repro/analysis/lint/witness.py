"""Replayable witness schedules for HB-confirmed races and deadlock cycles.

A lint finding is a *claim* about schedules nobody observed; a witness
makes the claim concrete: a minimally perturbed replay plan — one or two
surgical ``Delay`` insertions, nothing else — that the deterministic
simulator replays to actually *exhibit* the hazard (iReplayer's point:
concurrency-bug evidence convinces when it replays).  Everything is
derived from the trace alone:

* **race** — the happens-before detector recorded a full-concurrent
  access pair.  Delaying the recorded-earlier access's thread just
  before that access flips the adjacency: replay places the recorded-
  later access first, demonstrating that either order is reachable.
* **deadlock** — an R002 lock-order cycle.  Delaying each cycle thread
  just before its *second* (inner) acquisition stretches every
  hold-and-wait window until they overlap: replay ends in
  ``RunStatus.DEADLOCK`` with the cycle as diagnosis.

Synthesis is static (one pass over the log to map event indices to plan
steps); replay/verification runs only on demand — ``vppb lint
--replay-witness``, the ``--whatif`` grid probes, the test suite, and
the CI lint gate.

The witness serialises to a small JSON object whose sha256 digest is its
identity; the digest rides on the finding into JSON/SARIF/HTML together
with the replay command that re-checks it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import SimConfig
from repro.core.events import Phase, Primitive
from repro.core.result import RunStatus, SimulationResult
from repro.core.trace import Trace

__all__ = [
    "Witness",
    "WitnessReplay",
    "synthesize_race_witness",
    "synthesize_deadlock_witness",
    "apply_witness",
    "replay_witness",
    "find_witness",
]

#: Trace records that do not become plan steps (predictor._compile_thread
#: skips them), so they must not advance the step counter either.
_NON_STEP = (
    Primitive.START_COLLECT,
    Primitive.THREAD_START,
    Primitive.END_COLLECT,
)

_ACCESS = (Primitive.SHARED_READ, Primitive.SHARED_WRITE)


@dataclass(frozen=True)
class Witness:
    """A minimally perturbed schedule plus the outcome it must exhibit."""

    kind: str  # "race" | "deadlock"
    rule_id: str
    cpus: int
    #: (tid, step_index, delay_us) — fed to faultinject.delay_steps
    perturbations: Tuple[Tuple[int, int, int], ...]
    expect: Dict[str, object]
    program: str

    @property
    def digest(self) -> str:
        payload = json.dumps(
            {
                "kind": self.kind,
                "rule": self.rule_id,
                "cpus": self.cpus,
                "perturbations": [list(p) for p in self.perturbations],
                "expect": self.expect,
                "program": self.program,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def replay_command(self, log: str = "<log>") -> str:
        return f"vppb lint {log} --replay-witness {self.digest[:12]}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "rule": self.rule_id,
            "cpus": self.cpus,
            "perturbations": [
                {"tid": t, "step": s, "delay_us": d}
                for t, s, d in self.perturbations
            ],
            "expect": self.expect,
            "program": self.program,
            "digest": self.digest,
            "replay": self.replay_command(),
        }


@dataclass(frozen=True)
class WitnessReplay:
    """What replaying a witness actually produced."""

    exhibited: bool
    status: RunStatus
    detail: str
    result: Optional[SimulationResult] = None


# ---------------------------------------------------------------------------
# trace-index bookkeeping
# ---------------------------------------------------------------------------


def _index_trace(trace: Trace, wanted: Sequence[int]):
    """Map global record indices to (plan step index, shared-access ordinal).

    One pass.  The step index counts prior non-marker CALL records of the
    same thread (each call+ret pair compiles to exactly one plan step);
    the ordinal counts prior shared accesses of the same (tid, var), which
    is how the access is located again among replayed PlacedEvents.
    """
    wanted_set = set(wanted)
    steps: Dict[int, int] = {}
    ordinals: Dict[int, int] = {}
    call_count: Dict[int, int] = {}
    access_count: Dict[Tuple[int, str], int] = {}
    for i, rec in enumerate(trace):
        if rec.phase is not Phase.CALL or rec.primitive in _NON_STEP:
            continue
        tid = int(rec.tid)
        if i in wanted_set:
            steps[i] = call_count.get(tid, 0)
            if rec.primitive in _ACCESS and rec.obj is not None:
                ordinals[i] = access_count.get((tid, str(rec.obj)), 0)
        call_count[tid] = call_count.get(tid, 0) + 1
        if rec.primitive in _ACCESS and rec.obj is not None:
            key = (tid, str(rec.obj))
            access_count[key] = access_count.get(key, 0) + 1
    return steps, ordinals


# ---------------------------------------------------------------------------
# synthesis
# ---------------------------------------------------------------------------


def synthesize_race_witness(trace: Trace, pair) -> Optional[Witness]:
    """Build the inversion witness for one full-concurrent access pair."""
    a, b = pair.earlier, pair.later
    if a.event_index is None or b.event_index is None:
        return None
    if a.tid == b.tid:
        return None
    steps, ordinals = _index_trace(trace, (a.event_index, b.event_index))
    if a.event_index not in steps or b.event_index not in steps:
        return None
    # push the recorded-earlier access past the recorded-later one, with
    # a wide margin: replay timings differ from recorded ones (§3.2 cost
    # model), so the window is sized in multiples of the recorded gap
    gap_us = max(0, b.time_us - a.time_us)
    delay_us = max(1_000, gap_us * 4 + 200)
    expect = {
        "outcome": "inverted-accesses",
        "var": str(a.var),
        "first": {
            "tid": a.tid,
            "ordinal": ordinals[a.event_index],
            "write": bool(a.is_write),
        },
        "second": {
            "tid": b.tid,
            "ordinal": ordinals[b.event_index],
            "write": bool(b.is_write),
        },
    }
    # one CPU suffices: a race is an *ordering* property, and the Delay
    # flips the adjacency in virtual time regardless of parallelism.
    # Serialising the machine also keeps unrelated lock contention (which
    # can deadlock multi-CPU replays of buggy programs) from pre-empting
    # the demonstration.
    return Witness(
        kind="race",
        rule_id="VPPB-R001",
        cpus=1,
        perturbations=((a.tid, steps[a.event_index], delay_us),),
        expect=expect,
        program=trace.meta.program,
    )


def synthesize_deadlock_witness(trace: Trace, edges) -> Optional[Witness]:
    """Build the hold-and-wait witness for one lock-order cycle.

    *edges* are the cycle's :class:`LockOrderEdge` witnesses.  A cycle
    recorded entirely by one thread cannot deadlock (a thread does not
    contend with itself), so it gets no witness.
    """
    tids = {e.tid for e in edges}
    if len(tids) < 2:
        return None
    indices = [e.later_event_index for e in edges]
    if any(i is None for i in indices):
        return None
    steps, _ = _index_trace(trace, indices)
    if any(i not in steps for i in indices):
        return None
    # every cycle thread pauses just before its inner acquisition, long
    # enough that all the hold-and-wait windows are simultaneously open
    delay_us = max(10_000, trace.duration_us)
    perturbations = tuple(
        (e.tid, steps[e.later_event_index], delay_us) for e in edges
    )
    expect = {
        "outcome": "deadlock",
        "locks": sorted({str(e.held) for e in edges} | {str(e.later) for e in edges}),
        "tids": sorted(tids),
    }
    return Witness(
        kind="deadlock",
        rule_id="VPPB-R002",
        cpus=max(2, len(tids)),
        perturbations=perturbations,
        expect=expect,
        program=trace.meta.program,
    )


# ---------------------------------------------------------------------------
# replay + verification
# ---------------------------------------------------------------------------


def apply_witness(plan, witness: Witness):
    """The perturbed plan the witness describes (input plan untouched)."""
    from repro.faultinject.perturb import delay_steps

    return delay_steps(plan, witness.perturbations)


def _locate_access(result: SimulationResult, var: str, spec: Dict[str, object]):
    """Find the replayed PlacedEvent for an expectation's access spec."""
    tid = int(spec["tid"])
    wanted = int(spec["ordinal"])
    seen = 0
    for ev in result.events:
        if (
            int(ev.tid) == tid
            and ev.primitive in _ACCESS
            and ev.obj is not None
            and str(ev.obj) == var
        ):
            if seen == wanted:
                return ev
            seen += 1
    return None


def replay_witness(
    trace: Trace,
    witness: Witness,
    *,
    plan=None,
    max_events: int = 50_000_000,
    watchdog=None,
) -> WitnessReplay:
    """Replay the witness schedule and check the claimed outcome.

    Non-strict: a deadlock is a *successful* outcome for a deadlock
    witness and the partial result still carries the placed events a
    race witness needs.
    """
    from repro.core.predictor import compile_trace
    from repro.core.simulator import Simulator

    if plan is None:
        plan = compile_trace(trace)
    perturbed = apply_witness(plan, witness)
    sim = Simulator(
        SimConfig(cpus=witness.cpus),
        max_events=max_events,
        watchdog=watchdog,
        strict=False,
    )
    result = sim.run_replay(perturbed)

    if witness.kind == "deadlock":
        if result.status is RunStatus.DEADLOCK:
            ring = (
                " -> ".join(f"T{t}" for t in result.incompleteness.cycle)
                if result.incompleteness and result.incompleteness.cycle
                else "?"
            )
            return WitnessReplay(
                exhibited=True,
                status=result.status,
                detail=f"replay deadlocked as claimed (cycle {ring})",
                result=result,
            )
        return WitnessReplay(
            exhibited=False,
            status=result.status,
            detail=f"replay ended {result.status.value}, expected deadlock",
            result=result,
        )

    # race: the recorded-later access must now be placed first
    var = str(witness.expect["var"])
    first = _locate_access(result, var, witness.expect["first"])
    second = _locate_access(result, var, witness.expect["second"])
    if first is None or second is None:
        missing = "first" if first is None else "second"
        return WitnessReplay(
            exhibited=False,
            status=result.status,
            detail=(
                f"the {missing} access of the pair was never placed "
                f"(replay ended {result.status.value})"
            ),
            result=result,
        )
    if second.start_us < first.start_us:
        return WitnessReplay(
            exhibited=True,
            status=result.status,
            detail=(
                f"access order inverted: T{int(second.tid)} touched {var} at "
                f"{second.start_us}us, before T{int(first.tid)} at "
                f"{first.start_us}us — the schedule, not the program, decides"
            ),
            result=result,
        )
    return WitnessReplay(
        exhibited=False,
        status=result.status,
        detail=(
            f"recorded order survived the perturbation "
            f"({first.start_us}us before {second.start_us}us)"
        ),
        result=result,
    )


def find_witness(report, digest_prefix: str) -> Optional[Witness]:
    """Resolve a (possibly abbreviated) witness digest against a report."""
    prefix = digest_prefix.strip().lower()
    for finding in report:
        w = getattr(finding, "witness", None)
        if not w:
            continue
        if str(w.get("digest", "")).startswith(prefix):
            return Witness(
                kind=str(w["kind"]),
                rule_id=str(w["rule"]),
                cpus=int(w["cpus"]),
                perturbations=tuple(
                    (int(p["tid"]), int(p["step"]), int(p["delay_us"]))
                    for p in w["perturbations"]
                ),
                expect=dict(w["expect"]),
                program=str(w.get("program", "")),
            )
    return None
