"""Finding vocabulary of the trace lint engine.

A :class:`Finding` is one diagnosed problem: which rule fired, how bad it
is, which thread/object/source location it concerns, and the witness
sites that justify it.  Findings are plain data — every output format
(text report, JSON, SARIF, Visualizer markers) is a projection of the
same :class:`LintReport`.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.events import SourceLocation
from repro.core.ids import SyncObjectId

__all__ = ["Severity", "Site", "Finding", "LintReport"]


class Severity(enum.Enum):
    """How bad a finding is; also the SARIF ``level`` vocabulary."""

    NOTE = "note"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return _SEVERITY_RANK[self]

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls(text.lower())
        except ValueError:
            raise ValueError(
                f"unknown severity {text!r}; expected one of "
                f"{[s.value for s in cls]}"
            ) from None


_SEVERITY_RANK = {Severity.NOTE: 0, Severity.WARNING: 1, Severity.ERROR: 2}


@dataclass(frozen=True)
class Site:
    """One witness location: a thread at a source position in the trace.

    ``event_index`` is the position of the witnessing record in the
    global log (``trace[i]``), so tools can jump from a finding back to
    the exact recorded event.
    """

    label: str
    tid: Optional[int] = None
    source: Optional[SourceLocation] = None
    event_index: Optional[int] = None

    def describe(self) -> str:
        parts = [self.label]
        if self.tid is not None:
            parts.append(f"T{self.tid}")
        if self.source is not None:
            parts.append(str(self.source))
        return " ".join(parts)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"label": self.label}
        if self.tid is not None:
            out["tid"] = self.tid
        if self.source is not None:
            out["file"] = self.source.file
            out["line"] = self.source.line
            if self.source.function:
                out["function"] = self.source.function
        if self.event_index is not None:
            out["event_index"] = self.event_index
        return out


@dataclass(frozen=True)
class Finding:
    """One diagnosed problem in a recorded trace.

    ``witness`` (when a rule could synthesize one) is the serialized
    replayable schedule that exhibits the hazard — see
    :mod:`repro.analysis.lint.witness`.  ``manifests`` is filled by the
    predictive ``--whatif`` grid: the machine-config labels under which
    the hazard concretely manifested in replay (``None`` = grid not run,
    ``()`` = run but never manifested).
    """

    rule_id: str
    severity: Severity
    message: str
    tid: Optional[int] = None
    obj: Optional[SyncObjectId] = None
    source: Optional[SourceLocation] = None
    event_index: Optional[int] = None
    related: Tuple[Site, ...] = ()
    witness: Optional[Dict[str, object]] = None
    manifests: Optional[Tuple[str, ...]] = None

    def fingerprint(self) -> str:
        """Stable identity across runs of the same program.

        Hashes what the finding *is* (rule, operand, source sites) and
        not where in this particular log it happened (no event indices,
        no timestamps, no message text): re-recording the same program
        yields the same fingerprint, so findings diff across runs and a
        ``--baseline`` file keeps suppressing them.
        """
        parts = [
            self.rule_id,
            str(self.obj) if self.obj is not None else "",
            f"{self.source.file}:{self.source.line}" if self.source else "",
        ]
        parts.extend(
            sorted(
                f"{s.source.file}:{s.source.line}" if s.source else s.label
                for s in self.related
            )
        )
        digest = hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()
        return digest

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "rule_id": self.rule_id,
            "severity": self.severity.value,
            "message": self.message,
        }
        if self.tid is not None:
            out["tid"] = self.tid
        if self.obj is not None:
            out["object"] = str(self.obj)
        if self.source is not None:
            out["file"] = self.source.file
            out["line"] = self.source.line
            if self.source.function:
                out["function"] = self.source.function
        if self.event_index is not None:
            out["event_index"] = self.event_index
        if self.related:
            out["related"] = [site.to_dict() for site in self.related]
        out["fingerprint"] = self.fingerprint()
        if self.witness is not None:
            out["witness"] = self.witness
        if self.manifests is not None:
            out["manifests"] = list(self.manifests)
        return out


@dataclass
class LintReport:
    """The result of one lint run over one trace."""

    program: str
    findings: List[Finding] = field(default_factory=list)
    rules_run: Tuple[str, ...] = ()

    def __len__(self) -> int:
        return len(self.findings)

    def __iter__(self):
        return iter(self.findings)

    def counts_by_severity(self) -> Dict[Severity, int]:
        counts = {s: 0 for s in Severity}
        for f in self.findings:
            counts[f.severity] += 1
        return counts

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for f in self.findings:
            counts[f.rule_id] = counts.get(f.rule_id, 0) + 1
        return counts

    @property
    def worst(self) -> Optional[Severity]:
        if not self.findings:
            return None
        return max((f.severity for f in self.findings), key=lambda s: s.rank)

    def by_rule(self, rule_id: str) -> List[Finding]:
        return [f for f in self.findings if f.rule_id == rule_id]

    def at_least(self, severity: Severity) -> List[Finding]:
        return [f for f in self.findings if f.severity.rank >= severity.rank]

    def sorted(self) -> "LintReport":
        """Findings ordered worst-first, then by rule id and log position."""
        ordered = sorted(
            self.findings,
            key=lambda f: (
                -f.severity.rank,
                f.rule_id,
                f.event_index if f.event_index is not None else 1 << 62,
            ),
        )
        return LintReport(self.program, ordered, self.rules_run)

    def summary(self) -> str:
        counts = self.counts_by_severity()
        parts = [
            f"{counts[s]} {s.value}{'s' if counts[s] != 1 else ''}"
            for s in (Severity.ERROR, Severity.WARNING, Severity.NOTE)
            if counts[s]
        ]
        body = ", ".join(parts) if parts else "no findings"
        return f"{self.program}: {body} ({len(self.rules_run)} rules run)"

    def to_dict(self) -> Dict[str, object]:
        return {
            "program": self.program,
            "rules_run": list(self.rules_run),
            "counts": {
                s.value: n for s, n in self.counts_by_severity().items() if n
            },
            "findings": [f.to_dict() for f in self.sorted().findings],
        }
