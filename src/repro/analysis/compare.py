"""Before/after comparison of two simulated executions (the §5 loop).

The paper's tuning workflow is iterative: "the developer may detect
problems in the program and can modify the source code.  Then the
developer can re-run the execution to inspect the performance change."
This module makes the *inspect the change* step first-class: given the
predicted executions of the program before and after a modification (on
the same machine configuration), it reports what moved — makespan,
per-object blocking, thread utilisation — in one structured diff.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.metrics import ObjectContention, contention_by_object
from repro.core.ids import SyncObjectId
from repro.core.result import SegmentKind, SimulationResult
from repro.core.timebase import to_seconds

__all__ = [
    "ObjectDelta",
    "ComparisonReport",
    "compare_results",
    "format_comparison",
    "PhaseDelta",
    "ErrorAttribution",
    "attribute_error",
    "format_attribution",
]


@dataclass(frozen=True)
class ObjectDelta:
    """Blocking change on one synchronisation object."""

    obj: SyncObjectId
    before_blocked_us: int
    after_blocked_us: int

    @property
    def delta_us(self) -> int:
        return self.after_blocked_us - self.before_blocked_us


@dataclass(frozen=True)
class ComparisonReport:
    """The §5 'performance change' between two predicted executions."""

    before_makespan_us: int
    after_makespan_us: int
    object_deltas: List[ObjectDelta]
    before_utilisation: float
    after_utilisation: float

    @property
    def improvement(self) -> float:
        """Relative makespan reduction (positive = the change helped)."""
        if self.before_makespan_us == 0:
            return 0.0
        return 1.0 - self.after_makespan_us / self.before_makespan_us

    @property
    def speedup_of_change(self) -> float:
        if self.after_makespan_us == 0:
            return float("inf")
        return self.before_makespan_us / self.after_makespan_us

    def biggest_win(self) -> Optional[ObjectDelta]:
        """The object whose blocking shrank the most."""
        wins = [d for d in self.object_deltas if d.delta_us < 0]
        return min(wins, key=lambda d: d.delta_us) if wins else None

    def biggest_regression(self) -> Optional[ObjectDelta]:
        losses = [d for d in self.object_deltas if d.delta_us > 0]
        return max(losses, key=lambda d: d.delta_us) if losses else None


def compare_results(
    before: SimulationResult, after: SimulationResult
) -> ComparisonReport:
    """Diff two simulated executions of (variants of) one program.

    They should share a machine configuration for the makespan numbers to
    be meaningful; a mismatch raises.
    """
    if before.config.cpus != after.config.cpus:
        raise ValueError(
            f"comparing different machines: {before.config.cpus} vs "
            f"{after.config.cpus} CPUs"
        )

    def by_obj(result: SimulationResult) -> Dict[SyncObjectId, ObjectContention]:
        return {p.obj: p for p in contention_by_object(result)}

    b, a = by_obj(before), by_obj(after)
    deltas = [
        ObjectDelta(
            obj=obj,
            before_blocked_us=b[obj].total_blocked_us if obj in b else 0,
            after_blocked_us=a[obj].total_blocked_us if obj in a else 0,
        )
        for obj in sorted(set(b) | set(a), key=str)
    ]
    deltas.sort(key=lambda d: d.delta_us)
    return ComparisonReport(
        before_makespan_us=before.makespan_us,
        after_makespan_us=after.makespan_us,
        object_deltas=deltas,
        before_utilisation=before.utilisation(),
        after_utilisation=after.utilisation(),
    )


@dataclass(frozen=True)
class PhaseDelta:
    """One thread-condition phase's contribution to a prediction gap."""

    kind: SegmentKind
    real_us: int
    predicted_us: int

    @property
    def delta_us(self) -> int:
        return self.predicted_us - self.real_us


@dataclass(frozen=True)
class ErrorAttribution:
    """Where a measured-vs-predicted makespan gap lives (§4 error, by phase).

    Both executions' thread time is bucketed by
    :class:`~repro.core.result.SegmentKind` (running / runnable /
    blocked / sleeping) and compared bucket by bucket: a predictor that
    models compute correctly but mis-prices synchronisation shows its
    whole gap in the BLOCKED bucket, one that mis-models the dispatcher
    shows it under RUNNABLE.  Used by ``vppb validate --attribute`` to
    say *why* a workload missed its error budget, not just that it did.
    """

    real_makespan_us: int
    predicted_makespan_us: int
    phases: List[PhaseDelta]

    @property
    def makespan_delta_us(self) -> int:
        return self.predicted_makespan_us - self.real_makespan_us

    def dominant(self) -> Optional[PhaseDelta]:
        """The phase with the largest absolute gap, if any gap exists."""
        moved = [p for p in self.phases if p.delta_us != 0]
        return max(moved, key=lambda p: abs(p.delta_us)) if moved else None


def _phase_totals(result: SimulationResult) -> Dict[SegmentKind, int]:
    totals = {kind: 0 for kind in SegmentKind}
    for segments in result.segments.values():
        for seg in segments:
            totals[seg.kind] += seg.duration_us
    return totals


def attribute_error(
    real: SimulationResult, predicted: SimulationResult
) -> ErrorAttribution:
    """Attribute the gap between a measured and a predicted execution.

    Degenerate inputs are well-defined rather than errors: identical
    results attribute a zero gap to every phase, and a single-thread run
    simply has no runnable/blocked time to disagree about.  A machine
    mismatch (different CPU counts) raises — the comparison would
    attribute scheduling differences to the model.
    """
    if real.config.cpus != predicted.config.cpus:
        raise ValueError(
            f"attributing across different machines: {real.config.cpus} vs "
            f"{predicted.config.cpus} CPUs"
        )
    real_totals = _phase_totals(real)
    pred_totals = _phase_totals(predicted)
    phases = [
        PhaseDelta(
            kind=kind,
            real_us=real_totals[kind],
            predicted_us=pred_totals[kind],
        )
        for kind in SegmentKind
    ]
    return ErrorAttribution(
        real_makespan_us=real.makespan_us,
        predicted_makespan_us=predicted.makespan_us,
        phases=phases,
    )


def format_attribution(attribution: ErrorAttribution) -> str:
    """Human-readable phase table for the validate CLI."""
    lines = [
        f"makespan: real {to_seconds(attribution.real_makespan_us):.4f}s, "
        f"predicted {to_seconds(attribution.predicted_makespan_us):.4f}s "
        f"({attribution.makespan_delta_us / 1e6:+.4f}s)",
        f"{'phase':<10} {'real':>12} {'predicted':>12} {'delta':>12}",
    ]
    for p in attribution.phases:
        lines.append(
            f"{p.kind.value:<10} {to_seconds(p.real_us):>11.4f}s "
            f"{to_seconds(p.predicted_us):>11.4f}s {p.delta_us / 1e6:>+11.4f}s"
        )
    dom = attribution.dominant()
    if dom is not None:
        lines.append(
            f"dominant gap: {dom.kind.value} time "
            f"({dom.delta_us / 1e6:+.4f}s of "
            f"{attribution.makespan_delta_us / 1e6:+.4f}s makespan gap)"
        )
    return "\n".join(lines)


def format_comparison(report: ComparisonReport, *, top: int = 5) -> str:
    """Human-readable §5-style change summary."""
    lines = [
        f"makespan: {to_seconds(report.before_makespan_us):.4f}s -> "
        f"{to_seconds(report.after_makespan_us):.4f}s "
        f"({report.speedup_of_change:.2f}x, {report.improvement:+.1%})",
        f"machine utilisation: {report.before_utilisation:.0%} -> "
        f"{report.after_utilisation:.0%}",
    ]
    interesting = [d for d in report.object_deltas if d.delta_us != 0][:top]
    if interesting:
        lines.append("largest blocking changes:")
        for d in interesting:
            lines.append(
                f"  {str(d.obj):<24} {to_seconds(d.before_blocked_us):.4f}s -> "
                f"{to_seconds(d.after_blocked_us):.4f}s "
                f"({d.delta_us / 1e6:+.4f}s)"
            )
    return "\n".join(lines)
