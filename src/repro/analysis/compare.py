"""Before/after comparison of two simulated executions (the §5 loop).

The paper's tuning workflow is iterative: "the developer may detect
problems in the program and can modify the source code.  Then the
developer can re-run the execution to inspect the performance change."
This module makes the *inspect the change* step first-class: given the
predicted executions of the program before and after a modification (on
the same machine configuration), it reports what moved — makespan,
per-object blocking, thread utilisation — in one structured diff.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.metrics import ObjectContention, contention_by_object
from repro.core.ids import SyncObjectId
from repro.core.result import SimulationResult
from repro.core.timebase import to_seconds

__all__ = ["ObjectDelta", "ComparisonReport", "compare_results", "format_comparison"]


@dataclass(frozen=True)
class ObjectDelta:
    """Blocking change on one synchronisation object."""

    obj: SyncObjectId
    before_blocked_us: int
    after_blocked_us: int

    @property
    def delta_us(self) -> int:
        return self.after_blocked_us - self.before_blocked_us


@dataclass(frozen=True)
class ComparisonReport:
    """The §5 'performance change' between two predicted executions."""

    before_makespan_us: int
    after_makespan_us: int
    object_deltas: List[ObjectDelta]
    before_utilisation: float
    after_utilisation: float

    @property
    def improvement(self) -> float:
        """Relative makespan reduction (positive = the change helped)."""
        if self.before_makespan_us == 0:
            return 0.0
        return 1.0 - self.after_makespan_us / self.before_makespan_us

    @property
    def speedup_of_change(self) -> float:
        if self.after_makespan_us == 0:
            return float("inf")
        return self.before_makespan_us / self.after_makespan_us

    def biggest_win(self) -> Optional[ObjectDelta]:
        """The object whose blocking shrank the most."""
        wins = [d for d in self.object_deltas if d.delta_us < 0]
        return min(wins, key=lambda d: d.delta_us) if wins else None

    def biggest_regression(self) -> Optional[ObjectDelta]:
        losses = [d for d in self.object_deltas if d.delta_us > 0]
        return max(losses, key=lambda d: d.delta_us) if losses else None


def compare_results(
    before: SimulationResult, after: SimulationResult
) -> ComparisonReport:
    """Diff two simulated executions of (variants of) one program.

    They should share a machine configuration for the makespan numbers to
    be meaningful; a mismatch raises.
    """
    if before.config.cpus != after.config.cpus:
        raise ValueError(
            f"comparing different machines: {before.config.cpus} vs "
            f"{after.config.cpus} CPUs"
        )

    def by_obj(result: SimulationResult) -> Dict[SyncObjectId, ObjectContention]:
        return {p.obj: p for p in contention_by_object(result)}

    b, a = by_obj(before), by_obj(after)
    deltas = [
        ObjectDelta(
            obj=obj,
            before_blocked_us=b[obj].total_blocked_us if obj in b else 0,
            after_blocked_us=a[obj].total_blocked_us if obj in a else 0,
        )
        for obj in sorted(set(b) | set(a), key=str)
    ]
    deltas.sort(key=lambda d: d.delta_us)
    return ComparisonReport(
        before_makespan_us=before.makespan_us,
        after_makespan_us=after.makespan_us,
        object_deltas=deltas,
        before_utilisation=before.utilisation(),
        after_utilisation=after.utilisation(),
    )


def format_comparison(report: ComparisonReport, *, top: int = 5) -> str:
    """Human-readable §5-style change summary."""
    lines = [
        f"makespan: {to_seconds(report.before_makespan_us):.4f}s -> "
        f"{to_seconds(report.after_makespan_us):.4f}s "
        f"({report.speedup_of_change:.2f}x, {report.improvement:+.1%})",
        f"machine utilisation: {report.before_utilisation:.0%} -> "
        f"{report.after_utilisation:.0%}",
    ]
    interesting = [d for d in report.object_deltas if d.delta_us != 0][:top]
    if interesting:
        lines.append("largest blocking changes:")
        for d in interesting:
            lines.append(
                f"  {str(d.obj):<24} {to_seconds(d.before_blocked_us):.4f}s -> "
                f"{to_seconds(d.after_blocked_us):.4f}s "
                f"({d.delta_us / 1e6:+.4f}s)"
            )
    return "\n".join(lines)
