"""Critical-path and parallelism-bound analysis (extension).

The paper's Visualizer shows *where* parallelism is lost; a natural
extension (listed as such in DESIGN.md) is to quantify the best any
machine could do with a given trace:

* :func:`critical_path_us` — the trace's makespan on an idealised machine
  with one processor per thread (no processor ever contended), i.e. the
  schedule-constrained critical path through the recorded computation;
* :func:`max_speedup` — the uni-processor runtime over that critical
  path: an upper bound on achievable speed-up, handy to compare against
  the §3.2 sweeps (if ``predict_speedup(trace, 8)`` is already at the
  bound, more processors cannot help — the program must change instead);
* :func:`parallelism_profile` — average/peak parallelism of the ideal
  run, the numeric form of the §3.3 parallelism graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.config import SimConfig
from repro.core.predictor import compile_trace, predict
from repro.core.trace import Trace
from repro.program.uniexec import uniprocessor_config
from repro.visualizer.parallelism import ParallelismGraph

__all__ = [
    "critical_path_us",
    "max_speedup",
    "ParallelismSummary",
    "parallelism_profile",
]


def _ideal_config(trace: Trace, base: Optional[SimConfig] = None) -> SimConfig:
    base = base or SimConfig()
    nthreads = max(1, len(trace.thread_ids()))
    return SimConfig(
        cpus=nthreads,
        lwps=None,
        comm_delay_us=0,
        costs=base.costs,
        dispatch=base.dispatch,
        time_slicing=base.time_slicing,
        scheduler=base.scheduler,
    )


def critical_path_us(trace: Trace, *, base_config: Optional[SimConfig] = None) -> int:
    """Makespan with a processor always free for every thread."""
    plan = compile_trace(trace)
    res = predict(trace, _ideal_config(trace, base_config), plan=plan)
    return res.makespan_us


def max_speedup(trace: Trace, *, base_config: Optional[SimConfig] = None) -> float:
    """Upper bound on the traced program's speed-up on any machine."""
    plan = compile_trace(trace)
    uni = predict(trace, uniprocessor_config(base_config), plan=plan)
    ideal = predict(trace, _ideal_config(trace, base_config), plan=plan)
    if ideal.makespan_us == 0:
        return 1.0
    return uni.makespan_us / ideal.makespan_us


@dataclass(frozen=True)
class ParallelismSummary:
    """Numeric summary of the ideal run's parallelism graph."""

    critical_path_us: int
    average_parallelism: float
    peak_parallelism: int
    serial_fraction: float  # share of the ideal run with <= 1 thread running


def parallelism_profile(
    trace: Trace, *, base_config: Optional[SimConfig] = None
) -> ParallelismSummary:
    """Profile the trace's inherent parallelism on the ideal machine."""
    plan = compile_trace(trace)
    res = predict(trace, _ideal_config(trace, base_config), plan=plan)
    graph = ParallelismGraph.from_result(res)
    serial = sum(b - a for a, b in graph.bottleneck_intervals(max_running=1))
    return ParallelismSummary(
        critical_path_us=res.makespan_us,
        average_parallelism=graph.average_running(),
        peak_parallelism=graph.max_running(),
        serial_fraction=serial / res.makespan_us if res.makespan_us else 0.0,
    )
