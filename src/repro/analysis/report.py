"""Table-1-style reporting.

Assembles and formats the validation experiment exactly the way the
paper's Table 1 presents it: per application and processor count, the
real speed-up (middle of five seeded runs, with the min-max spread in
parentheses), the predicted speed-up, and the §4 error
``(real - predicted) / real``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.metrics import prediction_error
from repro.core.predictor import SpeedupPrediction
from repro.program.mpexec import GroundTruth

__all__ = ["Table1Cell", "Table1Row", "Table1", "format_table1"]


@dataclass(frozen=True)
class Table1Cell:
    """One (application, #CPUs) cell: real vs predicted."""

    cpus: int
    real: GroundTruth
    predicted: SpeedupPrediction

    @property
    def error(self) -> float:
        return prediction_error(self.real.speedup, self.predicted.speedup)


@dataclass
class Table1Row:
    """One application's row across the processor counts."""

    application: str
    cells: List[Table1Cell] = field(default_factory=list)

    def cell(self, cpus: int) -> Table1Cell:
        for c in self.cells:
            if c.cpus == cpus:
                return c
        raise KeyError(f"no cell for {cpus} CPUs")

    @property
    def max_abs_error(self) -> float:
        return max(abs(c.error) for c in self.cells) if self.cells else 0.0


@dataclass
class Table1:
    """The whole measured-vs-predicted table."""

    rows: List[Table1Row] = field(default_factory=list)

    def row(self, application: str) -> Table1Row:
        for r in self.rows:
            if r.application == application:
                return r
        raise KeyError(f"no row for {application!r}")

    @property
    def max_abs_error(self) -> float:
        return max((r.max_abs_error for r in self.rows), default=0.0)

    def cpu_counts(self) -> List[int]:
        counts: List[int] = []
        for r in self.rows:
            for c in r.cells:
                if c.cpus not in counts:
                    counts.append(c.cpus)
        return sorted(counts)


def format_table1(
    table: Table1,
    *,
    paper: Optional[Dict[str, "object"]] = None,
    title: str = "Table 1: Measured and predicted speed-ups",
) -> str:
    """Render the table as text, mirroring the paper's layout.

    When *paper* (a ``workloads.PAPER_TABLE1``-style mapping) is given, a
    ``paper`` line is added per application for side-by-side comparison.
    """
    cpu_counts = table.cpu_counts()
    header = ["Application/Speed-up"] + [f"{n} processors" for n in cpu_counts]
    widths = [max(22, len(header[0]))] + [max(18, len(h)) for h in header[1:]]

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))

    lines = [title, fmt_row(header), fmt_row(["-" * w for w in widths])]
    for row in table.rows:
        real_cells = []
        pred_cells = []
        err_cells = []
        for n in cpu_counts:
            cell = row.cell(n)
            stats = cell.real.speedups
            real_cells.append(
                f"{stats.median:.2f} ({stats.minimum:.2f}-{stats.maximum:.2f})"
            )
            pred_cells.append(f"{cell.predicted.speedup:.2f}")
            err_cells.append(f"{cell.error * 100:.1f}%")
        lines.append(fmt_row([f"{row.application}  Real"] + real_cells))
        lines.append(fmt_row(["  Pred."] + pred_cells))
        lines.append(fmt_row(["  Error"] + err_cells))
        if paper is not None and row.application in paper:
            ref = paper[row.application]
            ref_cells = [f"{ref.real[n]:.2f}" for n in cpu_counts]
            lines.append(fmt_row(["  (paper real)"] + ref_cells))
        lines.append("")
    lines.append(f"max |error| = {table.max_abs_error * 100:.1f}%")
    return "\n".join(lines)
