"""Thread behaviours: where the Simulator gets each thread's next step.

The Simulator executes threads as a sequence of *steps*: a CPU burst
followed by one thread-library operation.  A :class:`ThreadBehavior`
produces those steps.  Two implementations exist, and they are the crux of
the reproduction (see DESIGN.md §5):

* :class:`LiveBehavior` drives a program generator.  It folds consecutive
  :class:`~repro.program.ops.Compute` yields into the step's work and
  captures the generator's current source line for each op — the analogue
  of the Recorder saving the ``%i7`` return address.  Live behaviour is
  schedule-dependent: the generator reads shared state when resumed.

* :class:`ReplayBehavior` replays a fixed step list compiled from a
  recorded trace by :mod:`repro.core.predictor`, implementing the paper's
  deterministic replay (§3.2).

The protocol: ``next_step(result)`` receives the outcome of the previous
operation (e.g. a trylock's success, a created thread's id) and returns the
next :class:`Step`, or ``None`` when the thread body has ended without an
explicit ``thr_exit`` (the caller then synthesises one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence

from repro.core.errors import ProgramError
from repro.core.events import SourceLocation
from repro.program.ops import Compute, Op, Resched, ThrExit
from repro.program.program import ThreadGen

__all__ = ["Step", "ThreadBehavior", "LiveBehavior", "ReplayBehavior"]


@dataclass(slots=True)
class Step:
    """One schedulable unit: ``work_us`` of CPU time, then ``op``."""

    work_us: int
    op: Op

    def __post_init__(self) -> None:
        if self.work_us < 0:
            raise ProgramError(f"negative work {self.work_us}")
        if isinstance(self.op, Compute):
            raise ProgramError("a Step's op cannot be Compute (fold it into work)")


class ThreadBehavior(Protocol):
    """Source of a thread's steps."""

    def next_step(self, result: object) -> Optional[Step]:
        """Advance past the previous op (whose outcome is *result*) and
        return the next step; ``None`` signals the body ended."""


class LiveBehavior:
    """Drives a program-thread generator (ground-truth execution).

    ``perturb`` optionally maps each Compute duration to a jittered one —
    the hook :class:`~repro.program.mpexec.PerturbationModel` uses to model
    OS noise on the real machine.
    """

    #: Maximum consecutive Compute yields folded into one step.  Past it
    #: the driver emits an internal scheduling point (:class:`Resched`) so
    #: simulated time advances between polls — a spin loop then behaves
    #: like real hardware: it burns its own processor (and on the
    #: monitored one-LWP machine starves everyone else, the §6 livelock
    #: the engine's event guard converts into an error).
    MAX_COMPUTE_FOLD = 64

    def __init__(self, gen: ThreadGen, *, perturb=None):
        self._gen = gen
        self._started = False
        self._finished = False
        self._perturb = perturb

    def next_step(self, result: object) -> Optional[Step]:
        if self._finished:
            raise ProgramError("next_step called after the thread body ended")
        work = 0
        folded = 0
        while True:
            try:
                if not self._started:
                    self._started = True
                    op = next(self._gen)
                else:
                    op = self._gen.send(result)
            except StopIteration:
                self._finished = True
                if work:
                    # trailing compute with no following call: attach the
                    # work to the synthesized thr_exit
                    return Step(work, ThrExit())
                return None
            if not isinstance(op, Op):
                raise ProgramError(
                    f"thread body yielded {type(op).__name__}, expected an Op"
                )
            if isinstance(op, Compute):
                folded += 1
                duration = op.duration_us
                if self._perturb is not None:
                    duration = self._perturb(duration)
                work += duration
                result = None
                if folded >= self.MAX_COMPUTE_FOLD:
                    # spin/polling loop: hand back a scheduling point so
                    # simulated time advances between polls
                    return Step(work, Resched())
                continue
            if op.source is None:
                op.source = self._current_source()
            return Step(work, op)

    def _current_source(self) -> Optional[SourceLocation]:
        """Source line of the yield that produced the current op.

        ``gi_frame`` points at the suspended frame, whose ``f_lineno`` is
        the yield statement — the same information the real Recorder
        digs out of the ``%i7`` register plus the debugger (§3.1).
        """
        frame = self._gen.gi_frame
        if frame is None:
            return None
        code = frame.f_code
        return SourceLocation(
            file=code.co_filename, line=frame.f_lineno, function=code.co_name
        )


class ReplayBehavior:
    """Replays a pre-compiled step list (trace-driven prediction)."""

    def __init__(self, steps: Sequence[Step]):
        self._steps: List[Step] = list(steps)
        self._pos = 0

    def next_step(self, result: object) -> Optional[Step]:
        if self._pos >= len(self._steps):
            return None
        step = self._steps[self._pos]
        self._pos += 1
        return step

    @property
    def remaining(self) -> int:
        return len(self._steps) - self._pos

    def __len__(self) -> int:
        return len(self._steps)
