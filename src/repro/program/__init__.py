"""Virtual-program substrate: DSL, behaviours, executors.

Only the machine-independent pieces (ops, Program, behaviours) are
exported here; the executors live in :mod:`repro.program.uniexec` and
:mod:`repro.program.mpexec` (imported directly — they depend on the
simulator core, which itself consumes this package's op vocabulary).
"""

from repro.program.behavior import LiveBehavior, ReplayBehavior, Step, ThreadBehavior
from repro.program.program import Program, ThreadCtx, barrier

__all__ = [
    "LiveBehavior",
    "ReplayBehavior",
    "Step",
    "ThreadBehavior",
    "Program",
    "ThreadCtx",
    "barrier",
]
