"""Ground-truth multiprocessor execution (the paper's "real" runs).

The paper validates VPPB against real executions on a Sun Ultra Enterprise
4000 and reports, for each configuration, the middle value of five runs
plus the min/max spread (Table 1).  We have no E4000, so the ground truth
is the *same live program* executed on the N-CPU scheduler model — but,
unlike the trace replay, (a) its behaviour is genuinely schedule-dependent
(generators read shared state, try-locks really fail under contention) and
(b) a seeded :class:`PerturbationModel` adds the OS noise a real machine
exhibits (multiplicative jitter on every compute burst, standing in for
daemons, interrupts and cache variation).

:func:`measure_speedup` therefore reproduces the Table 1 "Real" column
protocol: five seeded runs, report (min, median, max).
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.config import SimConfig
from repro.core.result import SimulationResult
from repro.core.simulator import Simulator
from repro.program.program import Program
from repro.program.uniexec import uniprocessor_config

__all__ = [
    "PerturbationModel",
    "RunStatistics",
    "GroundTruth",
    "run_multiprocessor",
    "measure_speedup",
]

#: Default relative jitter: ±1 % per compute burst, roughly the spread the
#: paper's Table 1 shows between the five real runs.
DEFAULT_JITTER = 0.01

#: Number of real runs per configuration in the paper's protocol.
DEFAULT_RUNS = 5


class PerturbationModel:
    """Deterministic OS-noise model for ground-truth runs.

    Scales every compute burst by a factor drawn uniformly from
    ``[1 - jitter, 1 + jitter]`` using a stream seeded from *seed* — the
    same seed reproduces the same "machine day".  ``jitter=0`` yields the
    noise-free execution.
    """

    def __init__(self, seed: int, jitter: float = DEFAULT_JITTER):
        if jitter < 0 or jitter >= 1:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        self._rng = random.Random(f"vppb-perturb-{seed}")
        self.jitter = jitter

    def __call__(self, duration_us: int) -> int:
        if self.jitter == 0.0 or duration_us == 0:
            return duration_us
        factor = 1.0 + self._rng.uniform(-self.jitter, self.jitter)
        return max(0, round(duration_us * factor))


def run_multiprocessor(
    program: Program,
    config: SimConfig,
    *,
    seed: Optional[int] = None,
    jitter: float = DEFAULT_JITTER,
    max_events: int = 50_000_000,
) -> SimulationResult:
    """One ground-truth execution of *program* under *config*.

    With ``seed=None`` the run is noise-free (exact).
    """
    perturb = PerturbationModel(seed, jitter) if seed is not None else None
    sim = Simulator(config, perturb=perturb, max_events=max_events)
    return sim.run_program(program)


@dataclass(frozen=True)
class RunStatistics:
    """Min / median / max over repeated runs — Table 1's presentation."""

    values: Sequence[float]

    @property
    def median(self) -> float:
        return statistics.median(self.values)

    @property
    def minimum(self) -> float:
        return min(self.values)

    @property
    def maximum(self) -> float:
        return max(self.values)

    def brief(self, fmt: str = "{:.2f}") -> str:
        return (
            f"{fmt.format(self.median)} "
            f"({fmt.format(self.minimum)}-{fmt.format(self.maximum)})"
        )


@dataclass(frozen=True)
class GroundTruth:
    """Measured ("real") speed-up of a program on a machine size."""

    cpus: int
    speedups: RunStatistics
    uniprocessor_us: RunStatistics
    makespans_us: RunStatistics

    @property
    def speedup(self) -> float:
        """The paper's headline number: the middle value of the runs."""
        return self.speedups.median


def measure_speedup(
    program: Program,
    cpus: int,
    *,
    base_config: Optional[SimConfig] = None,
    runs: int = DEFAULT_RUNS,
    jitter: float = DEFAULT_JITTER,
    seed0: int = 1,
    max_events: int = 50_000_000,
    baseline_program: Optional[Program] = None,
) -> GroundTruth:
    """Table 1 "Real" protocol: *runs* seeded executions on *cpus* CPUs.

    Each run pairs a jittered uni-processor execution with a jittered
    multiprocessor execution of the same seed (one "day at the machine"),
    the speed-up being their ratio; the statistics over the runs give the
    (min mid max) triple the paper reports.

    ``baseline_program`` selects what runs on the uni-processor for the
    denominator.  By default it is *program* itself; the Table 1 harness
    passes the *sequential* (one-thread) version, which is the SPLASH-2
    speed-up convention.
    """
    base = base_config or SimConfig()
    baseline = baseline_program or program
    speedups: List[float] = []
    unis: List[float] = []
    mps: List[float] = []
    for i in range(runs):
        seed = seed0 + i
        uni = run_multiprocessor(
            baseline,
            uniprocessor_config(base),
            seed=seed,
            jitter=jitter,
            max_events=max_events,
        )
        mp = run_multiprocessor(
            program,
            base.with_cpus(cpus),
            seed=seed,
            jitter=jitter,
            max_events=max_events,
        )
        unis.append(uni.makespan_us)
        mps.append(mp.makespan_us)
        speedups.append(uni.makespan_us / mp.makespan_us)
    return GroundTruth(
        cpus=cpus,
        speedups=RunStatistics(tuple(speedups)),
        uniprocessor_us=RunStatistics(tuple(unis)),
        makespans_us=RunStatistics(tuple(mps)),
    )
