"""Virtual multithreaded programs.

A :class:`Program` is our stand-in for the paper's "C or C++ source code
compiled to a binary": a deterministic, executable model of a multithreaded
Solaris application.  Thread bodies are Python generator functions taking a
:class:`ThreadCtx` and yielding :mod:`repro.program.ops` operations::

    def worker(ctx):
        yield Compute(1_000)            # 1 ms of CPU work
        yield MutexLock("m")
        ctx.shared["total"] += 1        # real shared state
        yield MutexUnlock("m")

    def main(ctx):
        tids = []
        for _ in range(4):
            tid = yield ThrCreate(worker)
            tids.append(tid)
        for tid in tids:
            yield ThrJoin(tid)

Because generators manipulate genuine shared state between yields, program
behaviour is *schedule-dependent* exactly like a real program: a
``mutex_trylock`` can fail under contention, a work queue can be drained in
different orders, a convergence flag can be seen late.  That is what makes
the ground-truth multiprocessor execution differ from the trace-driven
prediction — the gap the paper measures.

:func:`barrier` builds the canonical condition-variable barrier (§6 notes
that barriers are commonly implemented with condition variables, and the
Simulator's replay heuristic is designed around this exact structure).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Generator

from repro.program.ops import (
    CondBroadcast,
    CondWait,
    MutexLock,
    MutexUnlock,
    Op,
)

__all__ = ["ThreadCtx", "Program", "ThreadGen", "barrier"]

#: A thread body: generator yielding ops, receiving op results.
ThreadGen = Generator[Op, object, None]


@dataclass
class ThreadCtx:
    """Per-thread execution context handed to every thread body.

    Attributes
    ----------
    tid:
        The Solaris-style thread id assigned at creation.
    shared:
        The program-wide shared state (one dict per program *run*).  This
        is "memory": reads and writes between yields are genuine and
        schedule-dependent.
    rng:
        A per-thread deterministic random stream (seeded from the program
        seed and the thread id) for data-dependent work generation.
    args:
        Arguments given at ``ThrCreate``.
    """

    tid: int
    shared: dict
    rng: random.Random
    args: tuple = ()


@dataclass
class Program:
    """A complete virtual program.

    Attributes
    ----------
    name:
        Program name (becomes the trace's ``program`` metadata).
    main:
        The ``main()`` thread body (generator function of one
        :class:`ThreadCtx` argument).
    semaphores:
        Initial semaphore counts, applied before ``main`` starts (the
        moral equivalent of static ``sema_init`` calls; threads may also
        issue :class:`~repro.program.ops.SemaInit` dynamically).
    shared_factory:
        Builds the initial shared state for one run.  A fresh dict per run
        keeps executions independent.
    seed:
        Seed for the per-thread RNG streams.
    """

    name: str
    main: Callable[[ThreadCtx], ThreadGen]
    semaphores: Dict[str, int] = field(default_factory=dict)
    shared_factory: Callable[[], dict] = dict
    seed: int = 0

    def make_shared(self) -> dict:
        return self.shared_factory()

    def make_rng(self, tid: int) -> random.Random:
        return random.Random(f"{self.name}-{self.seed}-T{int(tid)}")


def barrier(ctx: ThreadCtx, name: str, n: int) -> ThreadGen:
    """The canonical sense-reversing (generation-counting) barrier.

    Built from one mutex and one condition variable, the way §6 assumes:
    every arriving thread takes the mutex and bumps a counter; the last
    arrival resets the counter, bumps the generation and broadcasts; the
    others wait on the condition until the generation changes.

    Use as ``yield from barrier(ctx, "phase", nthreads)``.
    """
    if n < 1:
        raise ValueError(f"barrier of {n} threads")
    mtx = f"__bar_{name}_m"
    cv = f"__bar_{name}_c"
    count_key = ("barrier", name, "count")
    gen_key = ("barrier", name, "gen")
    yield MutexLock(mtx)
    generation = ctx.shared.setdefault(gen_key, 0)
    arrived = ctx.shared.get(count_key, 0) + 1
    ctx.shared[count_key] = arrived
    if arrived == n:
        ctx.shared[count_key] = 0
        ctx.shared[gen_key] = generation + 1
        yield CondBroadcast(cv)
    else:
        while ctx.shared[gen_key] == generation:
            yield CondWait(cv, mtx)
    yield MutexUnlock(mtx)
