"""Operation vocabulary of the virtual-program DSL.

A virtual program's threads are Python generators that *yield* operations:
CPU bursts (:class:`Compute`) and thread-library calls (everything else).
The same vocabulary is consumed from two sources:

* **live programs** (ground truth, :mod:`repro.program.behavior`), where the
  generator decides each next op from real shared state — so behaviour is
  genuinely schedule-dependent; and
* **trace replay** (:mod:`repro.core.predictor`), where the per-thread op
  sequence is compiled from a recorded log with the paper's §3.2 replay
  rules (try-operations pinned to their logged outcome, a timed-out
  ``cond_timedwait`` replayed as a pure delay via ``forced_timeout``,
  ``cond_broadcast`` barrier-style with an expected waiter count).

Each op maps onto a :class:`~repro.core.events.Primitive` so the Recorder
can log it and the Visualizer can symbolise it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

from repro.core.events import Primitive, SourceLocation
from repro.core.ids import SyncObjectId

__all__ = [
    "Op",
    "Noop",
    "Compute",
    "Delay",
    "Resched",
    "IoWait",
    "MutexLock",
    "MutexTrylock",
    "MutexUnlock",
    "SemaInit",
    "SemaWait",
    "SemaTryWait",
    "SemaPost",
    "CondWait",
    "CondTimedWait",
    "CondSignal",
    "CondBroadcast",
    "RwRdLock",
    "RwWrLock",
    "RwTryRdLock",
    "RwTryWrLock",
    "RwUnlock",
    "ThrCreate",
    "ThrJoin",
    "ThrExit",
    "ThrYield",
    "ThrSetPrio",
    "ThrSetConcurrency",
    "SharedRead",
    "SharedWrite",
    "mutex_id",
    "sema_id",
    "cond_id",
    "rwlock_id",
    "var_id",
]


def mutex_id(name: str) -> SyncObjectId:
    return SyncObjectId("mutex", name)


def sema_id(name: str) -> SyncObjectId:
    return SyncObjectId("sema", name)


def cond_id(name: str) -> SyncObjectId:
    return SyncObjectId("cond", name)


def rwlock_id(name: str) -> SyncObjectId:
    return SyncObjectId("rwlock", name)


def var_id(name: str) -> SyncObjectId:
    """Identity of an instrumented shared variable (kind ``var``)."""
    return SyncObjectId("var", name)


@dataclass(slots=True)
class Op:
    """Base class for all DSL operations.

    ``source`` is filled in automatically by the live behaviour driver from
    the generator's current frame (our analogue of saving the SPARC ``%i7``
    return address, §3.1) or copied from the log during replay.
    """

    source: Optional[SourceLocation] = field(default=None, kw_only=True)

    #: Overridden by subclasses that correspond to a traced primitive.
    primitive: Primitive | None = field(default=None, init=False, repr=False)

    @property
    def obj(self) -> Optional[SyncObjectId]:
        """The synchronisation object this op concerns, if any."""
        return None


# ---------------------------------------------------------------------------
# CPU and idle time
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class Compute(Op):
    """Consume ``duration_us`` of CPU time (no library call, not traced)."""

    duration_us: int = 0

    def __post_init__(self) -> None:
        if self.duration_us < 0:
            raise ValueError(f"negative compute duration {self.duration_us}")


@dataclass(slots=True)
class Resched(Op):
    """Internal scheduling point (not a library call, never recorded).

    Emitted by the live behaviour driver when a thread body yields very
    many consecutive :class:`Compute` ops (a polling/spin loop): it lets
    simulated time advance between polls *without* giving up the
    processor — exactly how a spin behaves on real hardware.  On the
    monitored one-LWP machine the spinner therefore still starves
    everyone else (the §6 livelock, caught by the engine's event guard),
    while on a multiprocessor the other threads run concurrently and can
    satisfy the spin condition.
    """


@dataclass(slots=True)
class Delay(Op):
    """Sleep for ``duration_us`` without consuming CPU.

    Used by the replay rules for a ``cond_timedwait`` that timed out in the
    log (§3.2: "handled as a delay if the operation timed out").
    """

    duration_us: int = 0

    def __post_init__(self) -> None:
        if self.duration_us < 0:
            raise ValueError(f"negative delay duration {self.duration_us}")


@dataclass(slots=True)
class IoWait(Op):
    """Blocking I/O of ``duration_us`` (disk, network...).

    The thread sleeps without consuming CPU, and unlike :class:`Delay`
    the wait is *recorded* (primitive ``io_wait`` with the duration as
    ``arg``), so replay reproduces it on any machine — the §6 extension
    that makes VPPB applicable beyond purely CPU-intensive programs.
    """

    duration_us: int = 0

    def __post_init__(self) -> None:
        self.primitive = Primitive.IO_WAIT
        if self.duration_us < 0:
            raise ValueError(f"negative io duration {self.duration_us}")


# ---------------------------------------------------------------------------
# shared-variable accesses (Eraser-style instrumentation)
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class SharedRead(Op):
    """Declare a read of shared variable ``name``.

    Record-only: the access itself costs nothing and never blocks; its
    value is the (timestamp, thread, variable, source) tuple the lockset
    race rule of ``vppb lint`` consumes — our analogue of Eraser's
    load instrumentation.
    """

    name: str = ""

    def __post_init__(self) -> None:
        self.primitive = Primitive.SHARED_READ

    @property
    def obj(self) -> SyncObjectId:
        return var_id(self.name)


@dataclass(slots=True)
class SharedWrite(Op):
    """Declare a write of shared variable ``name`` (store instrumentation)."""

    name: str = ""

    def __post_init__(self) -> None:
        self.primitive = Primitive.SHARED_WRITE

    @property
    def obj(self) -> SyncObjectId:
        return var_id(self.name)


# ---------------------------------------------------------------------------
# mutexes
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class MutexLock(Op):
    name: str = ""

    def __post_init__(self) -> None:
        self.primitive = Primitive.MUTEX_LOCK

    @property
    def obj(self) -> SyncObjectId:
        return mutex_id(self.name)


@dataclass(slots=True)
class MutexTrylock(Op):
    """Try to lock; yields ``True`` (acquired) or ``False`` back to the
    generator.  In replay the outcome is pinned from the log."""

    name: str = ""

    def __post_init__(self) -> None:
        self.primitive = Primitive.MUTEX_TRYLOCK

    @property
    def obj(self) -> SyncObjectId:
        return mutex_id(self.name)


@dataclass(slots=True)
class MutexUnlock(Op):
    name: str = ""

    def __post_init__(self) -> None:
        self.primitive = Primitive.MUTEX_UNLOCK

    @property
    def obj(self) -> SyncObjectId:
        return mutex_id(self.name)


# ---------------------------------------------------------------------------
# counting semaphores
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class SemaInit(Op):
    """Initialise semaphore ``name`` with ``count`` tokens (``sema_init``).

    Recorded with the count as ``arg`` so replay can reconstruct the
    semaphore's starting state.
    """

    name: str = ""
    count: int = 0

    def __post_init__(self) -> None:
        self.primitive = Primitive.SEMA_INIT
        if self.count < 0:
            raise ValueError(f"negative semaphore count {self.count}")

    @property
    def obj(self) -> SyncObjectId:
        return sema_id(self.name)


@dataclass(slots=True)
class SemaWait(Op):
    name: str = ""

    def __post_init__(self) -> None:
        self.primitive = Primitive.SEMA_WAIT

    @property
    def obj(self) -> SyncObjectId:
        return sema_id(self.name)


@dataclass(slots=True)
class SemaTryWait(Op):
    name: str = ""

    def __post_init__(self) -> None:
        self.primitive = Primitive.SEMA_TRYWAIT

    @property
    def obj(self) -> SyncObjectId:
        return sema_id(self.name)


@dataclass(slots=True)
class SemaPost(Op):
    name: str = ""

    def __post_init__(self) -> None:
        self.primitive = Primitive.SEMA_POST

    @property
    def obj(self) -> SyncObjectId:
        return sema_id(self.name)


# ---------------------------------------------------------------------------
# condition variables
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class CondWait(Op):
    """Wait on condition variable ``name``; ``mutex`` is released while
    waiting and re-acquired before the op completes (Solaris semantics)."""

    name: str = ""
    mutex: str = ""

    def __post_init__(self) -> None:
        self.primitive = Primitive.COND_WAIT

    @property
    def obj(self) -> SyncObjectId:
        return cond_id(self.name)


@dataclass(slots=True)
class CondTimedWait(Op):
    """As :class:`CondWait` but gives up after ``timeout_us``.

    The generator receives ``True`` if signalled, ``False`` on timeout.
    ``forced_timeout`` is set by the replay compiler when the log shows the
    wait timed out: §3.2 replays it "as a delay" — the thread simply
    sleeps for the timeout and never touches the condition variable.
    """

    name: str = ""
    mutex: str = ""
    timeout_us: int = 0
    forced_timeout: bool = False

    def __post_init__(self) -> None:
        self.primitive = Primitive.COND_TIMEDWAIT
        if self.timeout_us < 0:
            raise ValueError(f"negative timeout {self.timeout_us}")

    @property
    def obj(self) -> SyncObjectId:
        return cond_id(self.name)


@dataclass(slots=True)
class CondSignal(Op):
    name: str = ""

    def __post_init__(self) -> None:
        self.primitive = Primitive.COND_SIGNAL

    @property
    def obj(self) -> SyncObjectId:
        return cond_id(self.name)


@dataclass(slots=True)
class CondBroadcast(Op):
    """Wake all waiters of condition variable ``name``.

    ``expected_waiters`` implements the §6 barrier replay rule: when set
    (replay mode only), the *broadcasting* thread blocks until that many
    threads are waiting on the condition, then releases them all — "the
    last thread arriving at the barrier releases all the waiting threads".
    Live programs leave it ``None`` (plain Solaris broadcast semantics).
    """

    name: str = ""
    expected_waiters: Optional[int] = None

    def __post_init__(self) -> None:
        self.primitive = Primitive.COND_BROADCAST

    @property
    def obj(self) -> SyncObjectId:
        return cond_id(self.name)


# ---------------------------------------------------------------------------
# readers/writer locks
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class RwRdLock(Op):
    name: str = ""

    def __post_init__(self) -> None:
        self.primitive = Primitive.RW_RDLOCK

    @property
    def obj(self) -> SyncObjectId:
        return rwlock_id(self.name)


@dataclass(slots=True)
class RwWrLock(Op):
    name: str = ""

    def __post_init__(self) -> None:
        self.primitive = Primitive.RW_WRLOCK

    @property
    def obj(self) -> SyncObjectId:
        return rwlock_id(self.name)


@dataclass(slots=True)
class RwTryRdLock(Op):
    name: str = ""

    def __post_init__(self) -> None:
        self.primitive = Primitive.RW_TRYRDLOCK

    @property
    def obj(self) -> SyncObjectId:
        return rwlock_id(self.name)


@dataclass(slots=True)
class RwTryWrLock(Op):
    name: str = ""

    def __post_init__(self) -> None:
        self.primitive = Primitive.RW_TRYWRLOCK

    @property
    def obj(self) -> SyncObjectId:
        return rwlock_id(self.name)


@dataclass(slots=True)
class RwUnlock(Op):
    name: str = ""

    def __post_init__(self) -> None:
        self.primitive = Primitive.RW_UNLOCK

    @property
    def obj(self) -> SyncObjectId:
        return rwlock_id(self.name)


# ---------------------------------------------------------------------------
# thread management
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class ThrCreate(Op):
    """Create a new thread running generator function ``func``.

    Yields the new thread's id back to the generator.  ``bound`` requests a
    bound thread (its own LWP; creation costs ×6.7 and synchronisation ×5.9,
    §3.2); ``cpu`` binds it to a processor (which implies ``bound``).
    In replay mode ``func`` is ``None`` and ``replay_tid`` carries the
    thread id from the log.
    """

    func: Optional[Callable] = None
    args: Tuple = ()
    name: str = ""
    bound: bool = False
    priority: Optional[int] = None
    cpu: Optional[int] = None
    replay_tid: Optional[int] = None

    def __post_init__(self) -> None:
        self.primitive = Primitive.THR_CREATE
        if self.cpu is not None:
            self.bound = True  # binding to a CPU implies binding to an LWP


@dataclass(slots=True)
class ThrJoin(Op):
    """Wait for thread ``tid`` to exit; ``tid=None`` is the wildcard join
    (waits for *any* thread, which in replay "may not be the one that
    exited in the log file", §6)."""

    tid: Optional[int] = None

    def __post_init__(self) -> None:
        self.primitive = Primitive.THR_JOIN


@dataclass(slots=True)
class ThrExit(Op):
    def __post_init__(self) -> None:
        self.primitive = Primitive.THR_EXIT


@dataclass(slots=True)
class ThrYield(Op):
    def __post_init__(self) -> None:
        self.primitive = Primitive.THR_YIELD


@dataclass(slots=True)
class ThrSetPrio(Op):
    priority: int = 0

    def __post_init__(self) -> None:
        self.primitive = Primitive.THR_SETPRIO


@dataclass(slots=True)
class Noop(Op):
    """Record-only operation: charges the primitive's cost and places an
    event, with no semantic effect.

    Used by the replay compiler for failed try-operations — §3.2: "If the
    thread gained access to the lock in the log file, the simulation will
    do a mutex_lock, otherwise no action is taken" — while still showing
    the attempt in the Visualizer.
    """

    noop_primitive: Optional[Primitive] = None
    noop_obj: Optional[SyncObjectId] = None
    busy: bool = True

    def __post_init__(self) -> None:
        self.primitive = self.noop_primitive

    @property
    def obj(self) -> Optional[SyncObjectId]:
        return self.noop_obj


@dataclass(slots=True)
class ThrSetConcurrency(Op):
    """Request ``level`` LWPs for the process.  Ignored when the user fixes
    the LWP count in the simulation configuration (§3.2)."""

    level: int = 1

    def __post_init__(self) -> None:
        self.primitive = Primitive.THR_SETCONCURRENCY
