"""The monitored uni-processor execution (fig. 1 (b)-(d)).

"After that, the program is executed on a uni-processor.  When starting
the monitored execution, the Recorder is automatically placed between the
program and the standard thread library."  And crucially (§3.1/§6): "we
are forced to do the monitoring on one single LWP" — so the monitored run
is a 1-CPU, 1-LWP execution, threads switching only at synchronisation
points.

:func:`record_program` performs that run on a virtual program: it executes
the program live under the uni-processor configuration with a
:class:`~repro.recorder.recorder.Recorder` plugged into the probe port.
The probe overhead is charged into the simulated timeline, so the recorded
log is *intruded* exactly like a real one — downstream predictions inherit
that error, and the §4 overhead experiment measures it by comparing
against an overhead-free run.

§6's monitorability limits are detected rather than silently hit: a
program that spins (Barnes, Radiosity...) livelocks the single LWP and is
reported as :class:`~repro.core.errors.MonitorabilityError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.config import SimConfig
from repro.core.errors import LivelockError, MonitorabilityError
from repro.core.result import SimulationResult
from repro.core.simulator import Simulator
from repro.core.trace import Trace
from repro.program.program import Program
from repro.recorder.recorder import DEFAULT_PROBE_OVERHEAD_US, Recorder

__all__ = ["RecordingRun", "uniprocessor_config", "record_program", "unmonitored_run"]


def uniprocessor_config(base: Optional[SimConfig] = None) -> SimConfig:
    """The Recorder's machine model: one CPU, one LWP.

    Time-slicing is irrelevant with a single LWP but left on; user threads
    switch only at library calls, exactly as on real Solaris under the
    Recorder.

    Deliberately pinned to the default (Solaris) scheduler backend even
    when *base* selects another kernel: the baseline models the machine
    the trace was **recorded** on, so cross-backend speed-up figures
    share one anchor.  (With one CPU and one LWP the dispatch policy
    cannot change the outcome anyway — only the anchor's fingerprint.)
    """
    base = base or SimConfig()
    return SimConfig(
        cpus=1,
        lwps=1,
        comm_delay_us=0,
        costs=base.costs,
        dispatch=base.dispatch,
        time_slicing=base.time_slicing,
    )


@dataclass
class RecordingRun:
    """Product of one monitored uni-processor execution."""

    trace: Trace
    result: SimulationResult

    @property
    def monitored_makespan_us(self) -> int:
        """Duration of the monitored run (includes probe intrusion)."""
        return self.result.makespan_us

    @property
    def n_events(self) -> int:
        return len(self.trace)


def record_program(
    program: Program,
    *,
    overhead_us: int = DEFAULT_PROBE_OVERHEAD_US,
    base_config: Optional[SimConfig] = None,
    max_events: int = 50_000_000,
) -> RecordingRun:
    """Execute *program* on the monitored uni-processor and collect its log.

    Raises :class:`MonitorabilityError` when the program cannot make
    progress on a single LWP (§6 failure modes).
    """
    recorder = Recorder(program.name, overhead_us=overhead_us)
    sim = Simulator(
        uniprocessor_config(base_config), probe=recorder, max_events=max_events
    )
    try:
        result = sim.run_program(program)
    except LivelockError as exc:
        raise MonitorabilityError(
            f"program {program.name!r} cannot be monitored on one LWP "
            f"(livelocked: {exc}); see §6 — spinning threads never yield "
            "the only LWP"
        ) from exc
    return RecordingRun(trace=recorder.trace(), result=result)


def unmonitored_run(
    program: Program,
    *,
    base_config: Optional[SimConfig] = None,
) -> SimulationResult:
    """The same uni-processor execution without the Recorder.

    This is the §4 overhead baseline: "the monitored uni-processor
    execution takes somewhat longer than an ordinary uni-processor
    execution"; comparing the two makespans gives the recording overhead.
    """
    sim = Simulator(uniprocessor_config(base_config))
    return sim.run_program(program)
