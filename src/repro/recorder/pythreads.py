"""Live interposition on Python ``threading`` — the LD_PRELOAD analogue.

The paper's Recorder slips an instrumented library between the program
and ``libthread.so.1`` so every thread-library call is logged without
recompiling the program (§3.1).  This module does the same for real
Python programs: :class:`PyThreadsRecorder` hands out instrumented
``Thread`` / ``Lock`` / ``Semaphore`` / ``Condition`` objects (and can
optionally monkey-patch the ``threading`` module, the moral equivalent of
``LD_PRELOAD``), producing a standard :class:`~repro.core.trace.Trace`.

Why this is sound here of all places: CPython's GIL means a multithreaded
Python program *already* executes like the paper's monitored run — one
kernel thread making progress at a time, switching at blocking points.
The recorded log can then be fed to the same Simulator to predict how the
program would scale on N processors *if the GIL were not there* (or under
a GIL-free runtime).  Caveats inherited from the substrate: timestamps
include GIL hand-off noise, and CPU bursts are wall-clock approximations
(the repro-band note: "GIL distorts thread timing; trace replay still
doable").
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Dict, List, Optional

from repro.core.events import EventRecord, Phase, Primitive, Status
from repro.core.ids import MAIN_THREAD_ID, SyncObjectId, ThreadId
from repro.core.trace import Trace, TraceMeta
from repro.recorder.srcmap import AddressMap, RawCallSite, capture_call_site

__all__ = ["PyThreadsRecorder"]

# The real factories, captured at import time so instrumented objects and
# the patched() context manager never recurse into themselves.
_REAL_THREAD = threading.Thread
_REAL_LOCK = threading.Lock
_REAL_SEMAPHORE = threading.Semaphore
_REAL_CONDITION = threading.Condition


class PyThreadsRecorder:
    """Records thread-library activity of a live Python program.

    Use the instrumented factories::

        rec = PyThreadsRecorder("myprog")
        lock = rec.Lock("queue")
        t = rec.Thread(target=worker, args=(lock,))
        with rec.collecting():
            t.start()
            t.join()
        trace = rec.trace()

    or patch the whole ``threading`` module for unmodified code::

        with rec.patched(), rec.collecting():
            unmodified_function_using_threading()
    """

    def __init__(self, program: str = "a.out"):
        self.program = program
        self._records: List[tuple] = []  # (us, tid, phase, prim, kw, site)
        self._t0_ns: Optional[int] = None
        self._tids: Dict[int, int] = {}  # python ident -> solaris-ish tid
        self._next_tid = itertools.count(4)
        self._obj_names: Dict[int, str] = {}
        self._obj_counter: Dict[str, itertools.count] = {}
        self._thread_functions: Dict[int, str] = {}
        self._lock = threading.Lock()
        self._collecting = False

    # ------------------------------------------------------------------
    # time & identity
    # ------------------------------------------------------------------

    def _now_us(self) -> int:
        assert self._t0_ns is not None
        return max(0, (time.monotonic_ns() - self._t0_ns) // 1_000)

    def _tid(self) -> ThreadId:
        ident = threading.get_ident()
        with self._lock:
            tid = self._tids.get(ident)
            if tid is None:
                if threading.current_thread() is threading.main_thread():
                    tid = int(MAIN_THREAD_ID)
                else:
                    tid = next(self._next_tid)
                self._tids[ident] = tid
        return ThreadId(tid)

    def _name_object(self, kind: str, name: Optional[str]) -> str:
        if name is not None:
            return name
        counter = self._obj_counter.setdefault(kind, itertools.count(1))
        return f"{kind}{next(counter)}"

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def _record(
        self,
        phase: Phase,
        primitive: Primitive,
        *,
        site: Optional[RawCallSite] = None,
        **kw,
    ) -> None:
        if not self._collecting:
            return
        entry = (self._now_us(), self._tid(), phase, primitive, kw, site)
        with self._lock:
            self._records.append(entry)

    def collecting(self):
        """Context manager delimiting the monitored interval."""
        rec = self

        class _Collecting:
            def __enter__(self):
                rec._t0_ns = time.monotonic_ns()
                rec._collecting = True
                rec._record(Phase.CALL, Primitive.START_COLLECT)
                return rec

            def __exit__(self, *exc):
                rec._record(Phase.CALL, Primitive.END_COLLECT)
                rec._collecting = False
                return False

        return _Collecting()

    def trace(self) -> Trace:
        """Finalize: translate call sites (the "debugger" pass) and build
        the trace."""
        addr_map = AddressMap()
        records = [
            EventRecord(
                time_us=us,
                tid=tid,
                phase=phase,
                primitive=prim,
                source=addr_map.resolve(site),
                **kw,
            )
            for us, tid, phase, prim, kw, site in self._records
        ]
        meta = TraceMeta(
            program=self.program,
            thread_functions=dict(self._thread_functions),
            comment="recorded from live Python threading (GIL uni-processor)",
        )
        # live timestamps can tie across threads; keep recorder order
        return Trace(records, meta, validate=False)

    # ------------------------------------------------------------------
    # instrumented thread
    # ------------------------------------------------------------------

    def Thread(self, target=None, args=(), kwargs=None, name: Optional[str] = None):
        """An instrumented ``threading.Thread``."""
        rec = self

        class _Thread(_REAL_THREAD):
            def start(self, *a, **k):
                site = capture_call_site()
                rec._record(Phase.CALL, Primitive.THR_CREATE, site=site)
                super().start(*a, **k)
                # the child registered its tid in run(); wait for it
                child = rec._tids.get(self.ident)
                if child is None:
                    with rec._lock:
                        child = rec._tids.setdefault(
                            self.ident, next(rec._next_tid)
                        )
                func = getattr(self._target_func, "__name__", self.name)
                rec._thread_functions[child] = func
                rec._record(
                    Phase.RET,
                    Primitive.THR_CREATE,
                    site=site,
                    target=ThreadId(child),
                    status=Status.OK,
                    arg=0,
                )

            def run(self):
                rec._tid()  # register
                rec._record(Phase.CALL, Primitive.THREAD_START)
                try:
                    super().run()
                finally:
                    rec._record(Phase.CALL, Primitive.THR_EXIT)

            def join(self, timeout=None):
                site = capture_call_site()
                child = rec._tids.get(self.ident)
                target = ThreadId(child) if child is not None else None
                rec._record(
                    Phase.CALL, Primitive.THR_JOIN, site=site, target=target
                )
                super().join(timeout)
                rec._record(
                    Phase.RET,
                    Primitive.THR_JOIN,
                    site=site,
                    target=target,
                    status=Status.OK,
                )

        thread = _Thread(target=target, args=args, kwargs=kwargs or {}, name=name)
        thread._target_func = target
        return thread

    # ------------------------------------------------------------------
    # instrumented synchronisation objects
    # ------------------------------------------------------------------

    def Lock(self, name: Optional[str] = None):
        rec = self
        oid = SyncObjectId("mutex", self._name_object("lock", name))

        class _Lock:
            def __init__(self):
                self._real = _REAL_LOCK()

            def acquire(self, blocking: bool = True, timeout: float = -1, *, _site=None):
                site = _site or capture_call_site()
                prim = (
                    Primitive.MUTEX_LOCK if blocking else Primitive.MUTEX_TRYLOCK
                )
                rec._record(Phase.CALL, prim, site=site, obj=oid)
                ok = self._real.acquire(blocking, timeout)
                rec._record(
                    Phase.RET,
                    prim,
                    site=site,
                    obj=oid,
                    status=Status.OK if ok else Status.BUSY,
                )
                return ok

            def release(self, *, _site=None):
                site = _site or capture_call_site()
                rec._record(Phase.CALL, Primitive.MUTEX_UNLOCK, site=site, obj=oid)
                self._real.release()
                rec._record(
                    Phase.RET,
                    Primitive.MUTEX_UNLOCK,
                    site=site,
                    obj=oid,
                    status=Status.OK,
                )

            def __enter__(self):
                # skip this frame so the 'with lock:' line is recorded
                self.acquire(_site=capture_call_site(depth=2))
                return self

            def __exit__(self, *exc):
                self.release(_site=capture_call_site(depth=2))
                return False

            def locked(self):
                return self._real.locked()

        return _Lock()

    def Semaphore(self, value: int = 1, name: Optional[str] = None):
        rec = self
        oid = SyncObjectId("sema", self._name_object("sema", name))
        site0 = capture_call_site()
        rec._record(Phase.CALL, Primitive.SEMA_INIT, site=site0, obj=oid, arg=value)
        rec._record(
            Phase.RET,
            Primitive.SEMA_INIT,
            site=site0,
            obj=oid,
            arg=value,
            status=Status.OK,
        )

        class _Semaphore:
            def __init__(self):
                self._real = _REAL_SEMAPHORE(value)

            def acquire(self, blocking: bool = True, timeout=None, *, _site=None):
                site = _site or capture_call_site()
                prim = Primitive.SEMA_WAIT if blocking else Primitive.SEMA_TRYWAIT
                rec._record(Phase.CALL, prim, site=site, obj=oid)
                ok = self._real.acquire(blocking, timeout)
                rec._record(
                    Phase.RET,
                    prim,
                    site=site,
                    obj=oid,
                    status=Status.OK if ok else Status.BUSY,
                )
                return ok

            def release(self, n: int = 1, *, _site=None):
                site = _site or capture_call_site()
                for _ in range(n):
                    rec._record(Phase.CALL, Primitive.SEMA_POST, site=site, obj=oid)
                    self._real.release()
                    rec._record(
                        Phase.RET,
                        Primitive.SEMA_POST,
                        site=site,
                        obj=oid,
                        status=Status.OK,
                    )

            def __enter__(self):
                self.acquire(_site=capture_call_site(depth=2))
                return self

            def __exit__(self, *exc):
                self.release(_site=capture_call_site(depth=2))
                return False

        return _Semaphore()

    def Condition(self, lock=None, name: Optional[str] = None):
        rec = self
        cond_name = self._name_object("cond", name)
        oid = SyncObjectId("cond", cond_name)
        mutex_oid = None
        real_lock = None
        if lock is not None and hasattr(lock, "_real"):
            real_lock = lock._real

        class _Condition:
            def __init__(self):
                self._real = _REAL_CONDITION(real_lock)
                self._lock_proxy = lock

            def __enter__(self):
                if self._lock_proxy is not None:
                    self._lock_proxy.acquire()
                else:
                    self._real.acquire()
                return self

            def __exit__(self, *exc):
                if self._lock_proxy is not None:
                    self._lock_proxy.release()
                else:
                    self._real.release()
                return False

            def wait(self, timeout: Optional[float] = None):
                site = capture_call_site()
                obj2 = (
                    SyncObjectId("mutex", "cond-internal")
                    if self._lock_proxy is None
                    else SyncObjectId("mutex", rec._obj_names.get(id(lock), "m"))
                )
                if timeout is None:
                    rec._record(
                        Phase.CALL, Primitive.COND_WAIT, site=site, obj=oid
                    )
                    ok = self._real.wait()
                    rec._record(
                        Phase.RET,
                        Primitive.COND_WAIT,
                        site=site,
                        obj=oid,
                        status=Status.OK,
                    )
                else:
                    rec._record(
                        Phase.CALL,
                        Primitive.COND_TIMEDWAIT,
                        site=site,
                        obj=oid,
                        arg=round(timeout * 1_000_000),
                    )
                    ok = self._real.wait(timeout)
                    rec._record(
                        Phase.RET,
                        Primitive.COND_TIMEDWAIT,
                        site=site,
                        obj=oid,
                        arg=round(timeout * 1_000_000),
                        status=Status.OK if ok else Status.TIMEOUT,
                    )
                return ok

            def notify(self, n: int = 1):
                site = capture_call_site()
                rec._record(Phase.CALL, Primitive.COND_SIGNAL, site=site, obj=oid)
                self._real.notify(n)
                rec._record(
                    Phase.RET,
                    Primitive.COND_SIGNAL,
                    site=site,
                    obj=oid,
                    status=Status.OK,
                )

            def notify_all(self):
                site = capture_call_site()
                rec._record(
                    Phase.CALL, Primitive.COND_BROADCAST, site=site, obj=oid
                )
                self._real.notify_all()
                rec._record(
                    Phase.RET,
                    Primitive.COND_BROADCAST,
                    site=site,
                    obj=oid,
                    status=Status.OK,
                )

        return _Condition()

    # ------------------------------------------------------------------
    # LD_PRELOAD-style module patching
    # ------------------------------------------------------------------

    def patched(self):
        """Context manager that swaps the factories in the ``threading``
        module itself, so unmodified code is recorded — the closest
        Python gets to ``LD_PRELOAD``."""
        rec = self

        class _Patched:
            def __enter__(self):
                self._saved = (
                    threading.Thread,
                    threading.Lock,
                    threading.Semaphore,
                    threading.Condition,
                )
                threading.Thread = lambda *a, **k: rec.Thread(
                    target=k.get("target"),
                    args=k.get("args", ()),
                    kwargs=k.get("kwargs"),
                    name=k.get("name"),
                )
                threading.Lock = lambda: rec.Lock()
                threading.Semaphore = lambda value=1: rec.Semaphore(value)
                threading.Condition = lambda lock=None: rec.Condition(lock)
                return rec

            def __exit__(self, *exc):
                (
                    threading.Thread,
                    threading.Lock,
                    threading.Semaphore,
                    threading.Condition,
                ) = self._saved
                return False

        return _Patched()
