"""Source-location capture and address translation (§3.1's two steps).

The real Recorder splits source mapping in two: at probe time it saves
only the caller's return address (the SPARC ``%i7`` register — cheap);
after the run, a debugger plus a small parser translate the recorded
addresses into ``file:line`` pairs.

We keep the same two-phase architecture.  :func:`capture_call_site`
grabs the cheap raw datum at probe time (a code object and instruction
offset); :class:`AddressMap` performs the post-run translation into
:class:`~repro.core.events.SourceLocation` (Python frames make the
"debugger" step trivial, but batching it after the run keeps probe cost
minimal, exactly like the original).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from types import CodeType
from typing import Dict, Optional, Tuple

from repro.core.events import SourceLocation

__all__ = ["RawCallSite", "capture_call_site", "AddressMap"]


@dataclass(frozen=True, slots=True)
class RawCallSite:
    """The probe-time datum: our ``%i7``.

    ``code`` identifies the caller's code object, ``lineno`` the line the
    call was issued from.  Deliberately *not* a resolved
    :class:`SourceLocation`: translation happens after the run.
    """

    code: CodeType
    lineno: int


def capture_call_site(depth: int = 2) -> Optional[RawCallSite]:
    """Capture the caller's call site, *depth* frames up.

    ``depth=2`` skips this function and the probe itself, landing on the
    monitored program's frame — the same frame ``%i7`` would name.
    Returns ``None`` when the stack is shallower than *depth* (e.g. a
    probe invoked from C code).
    """
    try:
        frame = sys._getframe(depth)
    except ValueError:
        return None
    return RawCallSite(code=frame.f_code, lineno=frame.f_lineno)


class AddressMap:
    """Post-run translation of raw call sites to source locations.

    Mirrors the paper's debugger+parser pass: resolved entries are cached
    by (code, line) so repeated probe sites translate once.
    """

    def __init__(self) -> None:
        self._cache: Dict[Tuple[int, int], SourceLocation] = {}

    def resolve(self, site: Optional[RawCallSite]) -> Optional[SourceLocation]:
        if site is None:
            return None
        key = (id(site.code), site.lineno)
        loc = self._cache.get(key)
        if loc is None:
            loc = SourceLocation(
                file=site.code.co_filename,
                line=site.lineno,
                function=site.code.co_name,
            )
            self._cache[key] = loc
        return loc

    def __len__(self) -> int:
        return len(self._cache)
