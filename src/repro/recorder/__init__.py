"""The Recorder (§3.1): probes, log files, live interposition."""

from repro.recorder.logfile import dump, dumps, load, loads
from repro.recorder.pythreads import PyThreadsRecorder
from repro.recorder.recorder import DEFAULT_PROBE_OVERHEAD_US, Recorder
from repro.recorder.srcmap import AddressMap, RawCallSite, capture_call_site

__all__ = [
    "dump",
    "dumps",
    "load",
    "loads",
    "PyThreadsRecorder",
    "DEFAULT_PROBE_OVERHEAD_US",
    "Recorder",
    "AddressMap",
    "RawCallSite",
    "capture_call_site",
]
