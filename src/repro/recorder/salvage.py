"""Best-effort repair of damaged log files (the salvage pipeline).

A recorder that dies mid-run, a log truncated while copying, or a few
mangled lines in a 15 MB file (§4 sizes) should not cost the whole
Recorder→Simulator→Visualizer flow.  This module turns "malformed" into
"diagnosed": :func:`salvage_loads` parses as much of the text as it can,
then :func:`salvage_trace` repairs the surviving records into a trace
that satisfies every :class:`~repro.core.trace.Trace` invariant, and a
:class:`SalvageReport` enumerates each repair with its line number.

Repairs applied, in order:

* a partial last line (no trailing newline) is dropped — the classic
  recorder-died-mid-write damage;
* unparsable lines are dropped; unknown attributes on otherwise-good
  lines are skipped (forward compatibility with newer recorders);
* negative timestamps are clamped to zero;
* out-of-order timestamps are clamped monotonically (the recorded log is
  a sequential uni-processor history, so file order is ground truth);
* duplicated records and orphan/mismatched returns are dropped;
* open ``call`` phases get a synthesized ``ret`` record (a thread that
  never returned from ``mutex_lock`` in the log still did the call);
* records after a thread's ``thr_exit``, threads with no ``thr_create``
  record, ``thr_create`` pairs without a created-thread id (or whose
  child left no records at all), and ``thr_join`` records targeting a
  thread that no longer exists are dropped (they cannot be replayed).

Everything is reported; nothing is silently discarded.
"""

from __future__ import annotations

import codecs
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.core.errors import LogFormatError, TraceError
from repro.core.events import EventRecord, Phase, Primitive, Status
from repro.core.ids import MAIN_THREAD_ID
from repro.core.trace import Trace
from repro.recorder import logfile

__all__ = [
    "Repair",
    "SalvageLimitError",
    "SalvageReport",
    "SalvageResult",
    "SalvageStream",
    "salvage_trace",
    "salvage_loads",
    "salvage_load",
]


class SalvageLimitError(TraceError):
    """A streaming salvage exceeded its input-size cap."""

    def __init__(self, message: str, *, limit: int, seen: int):
        super().__init__(message)
        self.limit = limit
        self.seen = seen


@dataclass(frozen=True)
class Repair:
    """One repair the salvage pipeline performed."""

    kind: str
    detail: str
    lineno: Optional[int] = None

    def __str__(self) -> str:
        where = f"line {self.lineno}: " if self.lineno is not None else ""
        return f"{where}[{self.kind}] {self.detail}"


@dataclass
class SalvageReport:
    """Everything the salvage pipeline changed, with line numbers."""

    source: Optional[str] = None
    repairs: List[Repair] = field(default_factory=list)
    total_lines: int = 0
    records_parsed: int = 0
    records_kept: int = 0

    def add(self, kind: str, detail: str, lineno: Optional[int] = None) -> None:
        self.repairs.append(Repair(kind=kind, detail=detail, lineno=lineno))

    @property
    def clean(self) -> bool:
        """True when the input needed no repair at all."""
        return not self.repairs

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for r in self.repairs:
            counts[r.kind] = counts.get(r.kind, 0) + 1
        return counts

    def summary(self) -> str:
        """One-line diagnosis."""
        name = self.source or "<log>"
        if self.clean:
            return f"{name}: clean ({self.records_kept} records, no repairs)"
        return (
            f"{name}: {len(self.repairs)} repair(s), "
            f"{self.records_parsed} record(s) parsed -> {self.records_kept} kept"
        )

    def details(self) -> str:
        """Multi-line diagnosis: the summary, per-kind counts, and every
        individual repair with its line number."""
        lines = [self.summary()]
        for kind, count in sorted(self.counts_by_kind().items()):
            lines.append(f"  {count:>4} x {kind}")
        for r in self.repairs:
            lines.append(f"  - {r}")
        return "\n".join(lines)


@dataclass
class SalvageResult:
    """A salvaged trace plus the report of what it took to get it."""

    trace: Trace
    report: SalvageReport


# ---------------------------------------------------------------------------
# structural repair of parsed records
# ---------------------------------------------------------------------------


def _synth_ret(call: EventRecord, time_us: int) -> EventRecord:
    """A plausible return record closing *call*.

    A ``cond_timedwait`` is closed as TIMEOUT — replayed as a plain delay
    (§3.2), which cannot deadlock the simulation; everything else is
    closed as OK.
    """
    status = (
        Status.TIMEOUT if call.primitive is Primitive.COND_TIMEDWAIT else Status.OK
    )
    return EventRecord(
        time_us=max(time_us, call.time_us),
        tid=call.tid,
        phase=Phase.RET,
        primitive=call.primitive,
        obj=call.obj,
        obj2=call.obj2,
        target=call.target,
        arg=call.arg,
        status=status,
        source=call.source,
    )


def _is_duplicate(a: EventRecord, b: EventRecord) -> bool:
    return (
        a.time_us == b.time_us
        and a.primitive is b.primitive
        and a.obj == b.obj
        and a.phase is b.phase
    )


def salvage_trace(
    records: List[Tuple[Optional[int], EventRecord]],
    meta=None,
    *,
    report: Optional[SalvageReport] = None,
    validate: bool = True,
) -> SalvageResult:
    """Repair parsed records into a structurally valid :class:`Trace`.

    *records* is a list of ``(lineno, record)`` pairs in file order
    (``lineno`` may be None for records that never lived in a file).
    """
    report = report if report is not None else SalvageReport()
    report.records_parsed = len(records)

    # -- clamp out-of-order timestamps (file order is ground truth) -------
    clamped: List[Tuple[Optional[int], EventRecord]] = []
    last_time = 0
    for lineno, rec in records:
        if rec.time_us < last_time:
            report.add(
                "clamped-timestamp",
                f"{rec.brief()}: {rec.time_us}us -> {last_time}us",
                lineno,
            )
            rec = rec.shifted(last_time - rec.time_us)
        last_time = rec.time_us
        clamped.append((lineno, rec))

    # -- call/ret pairing repair, per thread, in file order ---------------
    paired: List[Tuple[Optional[int], EventRecord]] = []
    open_call: Dict[int, Tuple[Optional[int], EventRecord]] = {}
    exited: set = set()
    for lineno, rec in clamped:
        tid = int(rec.tid)
        if rec.is_marker:
            # markers are single records; end_collect is legitimately
            # stamped on the main thread after its thr_exit
            paired.append((lineno, rec))
            continue
        if tid in exited:
            report.add(
                "dropped-after-exit", f"{rec.brief()} after thr_exit", lineno
            )
            continue
        if rec.primitive is Primitive.THR_EXIT:
            if tid in open_call:
                _, call = open_call.pop(tid)
                report.add(
                    "synthesized-return",
                    f"closing open {call.primitive} of T{tid} before thr_exit",
                    lineno,
                )
                paired.append((None, _synth_ret(call, rec.time_us)))
            exited.add(tid)
            paired.append((lineno, rec))
            continue
        if rec.phase is Phase.CALL:
            if tid in open_call:
                _, prev = open_call[tid]
                if _is_duplicate(prev, rec):
                    report.add(
                        "dropped-duplicate-call", rec.brief(), lineno
                    )
                    continue
                report.add(
                    "synthesized-return",
                    f"closing open {prev.primitive} of T{tid} "
                    f"before new {rec.primitive} call",
                    lineno,
                )
                paired.append((None, _synth_ret(prev, rec.time_us)))
            open_call[tid] = (lineno, rec)
            paired.append((lineno, rec))
        else:  # RET
            entry = open_call.get(tid)
            if entry is None:
                report.add("dropped-orphan-return", rec.brief(), lineno)
                continue
            _, call = entry
            if call.primitive is not rec.primitive:
                report.add(
                    "dropped-mismatched-return",
                    f"{rec.brief()} does not close open {call.primitive}",
                    lineno,
                )
                continue
            del open_call[tid]
            paired.append((lineno, rec))

    # close calls still open at end-of-log (truncation damage)
    for tid, (lineno, call) in sorted(open_call.items()):
        report.add(
            "synthesized-return",
            f"closing open {call.primitive} of T{tid} at end of log",
            lineno,
        )
        paired.append((None, _synth_ret(call, last_time)))

    # -- repair or drop thr_create pairs without a created-thread id ------
    # A live recording only stamps the child tid on the RET record, so a
    # call without a target is normal; a *pair* without one cannot be
    # replayed and is dropped whole.  A ret missing its target while the
    # call carries one (reordered/mangled damage) is repaired from it.
    drop: set = set()
    replacement: Dict[int, EventRecord] = {}
    pending_create: Dict[int, int] = {}
    for idx, (lineno, rec) in enumerate(paired):
        if rec.primitive is not Primitive.THR_CREATE:
            continue
        tid = int(rec.tid)
        if rec.is_call:
            pending_create[tid] = idx
            continue
        call_idx = pending_create.pop(tid, None)
        if rec.target is not None:
            continue
        call_target = (
            paired[call_idx][1].target if call_idx is not None else None
        )
        if call_target is not None:
            replacement[idx] = replace(rec, target=call_target)
            report.add(
                "repaired-create-target",
                f"{rec.brief()}: created-thread id T{int(call_target)} "
                "recovered from the call record",
                lineno,
            )
        else:
            if call_idx is not None:
                drop.add(call_idx)
            drop.add(idx)
            report.add(
                "dropped-unreplayable-create",
                f"{rec.brief()} has no created-thread id",
                lineno,
            )
    cleaned = [
        (lineno, replacement.get(idx, rec))
        for idx, (lineno, rec) in enumerate(paired)
        if idx not in drop
    ]

    # -- drop what cannot be replayed: threads with no creation record,
    #    creates of threads that left no records of their own (truncation
    #    cut the whole child off), joins on threads that no longer exist.
    #    Iterated to a fixpoint because each drop can cascade into the
    #    others.
    while True:
        created = {int(MAIN_THREAD_ID)}
        for _, rec in cleaned:
            if rec.primitive is Primitive.THR_CREATE and rec.is_ret:
                created.add(int(rec.target))  # None-target rets dropped above
        present = {int(r.tid) for _, r in cleaned}
        drop_idx: set = set()

        orphans = {t for t in present if t not in created}
        for tid in sorted(orphans):
            report.add(
                "dropped-orphan-thread",
                f"T{tid} has events but no thr_create record",
            )
        if orphans:
            drop_idx |= {
                i for i, (_, r) in enumerate(cleaned) if int(r.tid) in orphans
            }

        childless: Dict[int, int] = {}
        for i, (lineno, rec) in enumerate(cleaned):
            if i in drop_idx or rec.primitive is not Primitive.THR_CREATE:
                continue
            tid = int(rec.tid)
            if rec.is_call:
                childless[tid] = i
                continue
            call_i = childless.pop(tid, None)
            child = int(rec.target)
            if child not in present:
                if call_i is not None:
                    drop_idx.add(call_i)
                drop_idx.add(i)
                report.add(
                    "dropped-unreplayable-create",
                    f"created thread T{child} left no records",
                    lineno,
                )

        surviving = {int(MAIN_THREAD_ID)}
        for i, (_, rec) in enumerate(cleaned):
            if i in drop_idx:
                continue
            if rec.primitive is Primitive.THR_CREATE and rec.is_ret:
                surviving.add(int(rec.target))
        for i, (lineno, rec) in enumerate(cleaned):
            if i in drop_idx or rec.primitive is not Primitive.THR_JOIN:
                continue
            if rec.target is not None and int(rec.target) not in surviving:
                drop_idx.add(i)
                report.add(
                    "dropped-orphan-join",
                    f"{rec.brief()} targets a thread that no longer exists",
                    lineno,
                )

        if not drop_idx:
            break
        cleaned = [pr for i, pr in enumerate(cleaned) if i not in drop_idx]

    report.records_kept = len(cleaned)
    final = [rec for _, rec in cleaned]
    try:
        trace = Trace(final, meta, validate=validate)
    except (TraceError, ValueError) as exc:
        # belt and braces: a residual inconsistency must not escape the
        # salvage path as an exception — degrade to an unvalidated trace
        report.add("residual-inconsistency", str(exc))
        trace = Trace(final, meta, validate=False)
    return SalvageResult(trace=trace, report=report)


# ---------------------------------------------------------------------------
# lenient text parsing (incremental)
# ---------------------------------------------------------------------------


class SalvageStream:
    """Incremental salvage: feed a damaged log in chunks, finish once.

    The streaming counterpart of :func:`salvage_loads`, built for the
    service's chunked trace uploads — a multi-megabyte log flows
    through :meth:`feed` one network chunk at a time and only the
    *parsed records* are retained, never the raw text.  ``feed``
    accepts ``bytes`` (decoded incrementally as UTF-8 with replacement,
    so a multi-byte character split across chunks is handled) or
    ``str``.  ``max_bytes`` is a hard input cap: the first chunk that
    crosses it raises :class:`SalvageLimitError` and the stream refuses
    further input.

    Line-level parsing happens as chunks arrive; the structural repairs
    (call/ret pairing, orphan threads, ...) need the whole record list
    and run in :meth:`finish`, which returns the same
    :class:`SalvageResult` the one-shot functions do.  A trailing
    partial line at finish is recorder-died-mid-write damage, exactly
    as in :func:`salvage_loads`.
    """

    def __init__(
        self,
        *,
        source: Optional[str] = None,
        validate: bool = True,
        max_bytes: Optional[int] = None,
    ) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_bytes = max_bytes
        self.bytes_fed = 0
        self._validate = validate
        self._report = SalvageReport(source=source)
        self._decoder = codecs.getincrementaldecoder("utf-8")("replace")
        self._acc = logfile._HeaderAcc()
        self._records: List[Tuple[Optional[int], EventRecord]] = []
        self._buffer = ""  # the current, still-incomplete line
        self._lineno = 0
        self._finished = False

    @property
    def records_parsed(self) -> int:
        return len(self._records)

    def feed(self, chunk: Union[str, bytes]) -> None:
        """Consume one chunk of log input."""
        if self._finished:
            raise RuntimeError("SalvageStream already finished")
        if isinstance(chunk, bytes):
            self.bytes_fed += len(chunk)
            text = self._decoder.decode(chunk)
        else:
            self.bytes_fed += len(chunk)
            text = chunk
        if self.max_bytes is not None and self.bytes_fed > self.max_bytes:
            self._finished = True
            raise SalvageLimitError(
                f"log upload exceeds the {self.max_bytes}-byte cap",
                limit=self.max_bytes,
                seen=self.bytes_fed,
            )
        self._buffer += text
        if not self._buffer:
            return
        # split exactly as str.splitlines does ('\n', '\r', '\r\n' and
        # the unicode separators), so CR-only and NEL-separated logs
        # salvage the same as through the one-shot path
        pieces = self._buffer.splitlines(keepends=True)
        self._buffer = ""
        last = len(pieces) - 1
        for index, piece in enumerate(pieces):
            line = piece.splitlines()[0]
            if index == last and (line == piece or piece.endswith("\r")):
                # unterminated tail — or a trailing bare '\r' that may
                # be the first half of a '\r\n' split across chunks
                self._buffer = piece
                return
            self._lineno += 1
            self._consume_line(line, self._lineno)

    def _consume_line(self, raw: str, lineno: int) -> None:
        line = raw.strip()
        if not line:
            return

        def on_repair(kind: str, detail: str, _lineno=lineno) -> None:
            self._report.add(kind, detail, _lineno)

        if line.startswith("#"):
            logfile._parse_header_line(self._acc, line, lineno, on_repair=on_repair)
            return
        try:
            self._records.append(
                (lineno, logfile._parse_record(line, lineno, on_repair=on_repair))
            )
        except LogFormatError as exc:
            self._report.add("dropped-unparsable-line", exc.message, lineno)

    def finish(self) -> SalvageResult:
        """Flush, run the structural repairs, and return the result."""
        if self._finished:
            raise RuntimeError("SalvageStream already finished")
        self._finished = True
        self._buffer += self._decoder.decode(b"", True)
        for piece in self._buffer.splitlines(keepends=True):
            line = piece.splitlines()[0]
            self._lineno += 1
            if line != piece:
                # a held-back terminated line (e.g. a trailing bare
                # '\r' that never grew into '\r\n') is a real line
                self._consume_line(line, self._lineno)
            elif line.strip():
                # input ended without a trailing newline: the classic
                # recorder-died-mid-write partial last line
                self._report.add(
                    "dropped-partial-last-line",
                    f"no trailing newline: {line.strip()[:60]!r}",
                    self._lineno,
                )
        self._report.total_lines = self._lineno
        if not self._acc.saw_version:
            self._report.add(
                "missing-version-header", "no '# vppb-log <version>' line", 1
            )
        return salvage_trace(
            self._records,
            self._acc.meta(),
            report=self._report,
            validate=self._validate,
        )


def salvage_loads(
    text: str,
    *,
    source: Optional[str] = None,
    validate: bool = True,
) -> SalvageResult:
    """Parse damaged log text, repairing everything repairable.

    Never raises for malformed input: the worst possible outcome is an
    empty trace whose report explains why every line was dropped.
    (One-shot wrapper over :class:`SalvageStream`.)
    """
    stream = SalvageStream(source=source, validate=validate)
    stream.feed(text)
    return stream.finish()


def salvage_load(path: Union[str, Path], *, validate: bool = True) -> SalvageResult:
    """Read and salvage a log file from disk."""
    return salvage_loads(
        Path(path).read_text(errors="replace"),
        source=str(path),
        validate=validate,
    )
