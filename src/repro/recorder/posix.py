"""POSIX-threads naming support (§6).

"In the current implementation VPPB supports Solaris 2.X threads.
However, the tool can easily be adjusted to support, e.g., POSIX threads
with only small modifications of the probes in the Recorder."

This module is that adjustment: a bidirectional mapping between the
``pthread_*`` API names and the Solaris primitives the Simulator models.
Two integration points:

* the log-file parser accepts pthread names (so logs produced by a
  pthread-flavoured recorder replay unchanged) — see
  :func:`primitive_for_name`, consulted by :mod:`repro.recorder.logfile`;
* :func:`to_posix_name` renders a trace's primitives under POSIX naming
  (used by ``dumps(..., posix_names=True)`` for tools that expect it).

Semantic notes: ``pthread_join`` has no wildcard (POSIX requires a target
thread), ``sem_*`` comes from ``semaphore.h`` rather than the threads API,
and Solaris ``thr_setconcurrency`` has the (obsolete)
``pthread_setconcurrency`` counterpart — all are plain renames as far as
the Simulator is concerned, which is exactly the paper's point.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.events import Primitive

__all__ = ["POSIX_NAMES", "primitive_for_name", "to_posix_name", "from_posix_name"]

#: Solaris primitive -> POSIX API name.
POSIX_NAMES: Dict[Primitive, str] = {
    Primitive.THR_CREATE: "pthread_create",
    Primitive.THR_EXIT: "pthread_exit",
    Primitive.THR_JOIN: "pthread_join",
    Primitive.THR_YIELD: "sched_yield",
    Primitive.THR_SETPRIO: "pthread_setschedprio",
    Primitive.THR_SETCONCURRENCY: "pthread_setconcurrency",
    Primitive.MUTEX_LOCK: "pthread_mutex_lock",
    Primitive.MUTEX_TRYLOCK: "pthread_mutex_trylock",
    Primitive.MUTEX_UNLOCK: "pthread_mutex_unlock",
    Primitive.SEMA_INIT: "sem_init",
    Primitive.SEMA_WAIT: "sem_wait",
    Primitive.SEMA_TRYWAIT: "sem_trywait",
    Primitive.SEMA_POST: "sem_post",
    Primitive.COND_WAIT: "pthread_cond_wait",
    Primitive.COND_TIMEDWAIT: "pthread_cond_timedwait",
    Primitive.COND_SIGNAL: "pthread_cond_signal",
    Primitive.COND_BROADCAST: "pthread_cond_broadcast",
    Primitive.RW_RDLOCK: "pthread_rwlock_rdlock",
    Primitive.RW_WRLOCK: "pthread_rwlock_wrlock",
    Primitive.RW_TRYRDLOCK: "pthread_rwlock_tryrdlock",
    Primitive.RW_TRYWRLOCK: "pthread_rwlock_trywrlock",
    Primitive.RW_UNLOCK: "pthread_rwlock_unlock",
}

_BY_POSIX_NAME: Dict[str, Primitive] = {v: k for k, v in POSIX_NAMES.items()}

_BY_SOLARIS_NAME: Dict[str, Primitive] = {p.value: p for p in Primitive}


def primitive_for_name(name: str) -> Optional[Primitive]:
    """Resolve a primitive from either naming convention.

    Solaris names win on (hypothetical) collisions; recorder markers
    (``start_collect`` etc.) only exist under their native names.
    """
    prim = _BY_SOLARIS_NAME.get(name)
    if prim is not None:
        return prim
    return _BY_POSIX_NAME.get(name)


def to_posix_name(primitive: Primitive) -> str:
    """POSIX spelling of a primitive (markers keep their native names)."""
    return POSIX_NAMES.get(primitive, primitive.value)


def from_posix_name(name: str) -> Primitive:
    """Strict POSIX-only lookup; raises ``KeyError`` for unknown names."""
    return _BY_POSIX_NAME[name]
