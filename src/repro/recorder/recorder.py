"""The Recorder (§3.1): collection of probe records during a monitored run.

The real Recorder is a library interposed between the program and
``libthread.so.1`` via ``LD_PRELOAD``: every thread-library call passes
through a probe that stores (in memory, to keep intrusion minimal) the
timestamp, calling thread, primitive, object and source location, and then
calls the real routine.  When the program terminates the data is written to
a log file.

Here the :class:`Recorder` plugs into the Simulator's probe port (for
virtual programs, see :mod:`repro.program.uniexec`) or into the live Python
``threading`` interposer (:mod:`repro.recorder.pythreads`).  Its
``overhead_us`` is charged into the monitored timeline per record, which is
what produces the §4 "recording overhead" (≤ 2.6 % for Ocean).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.errors import RecorderError
from repro.core.events import EventRecord
from repro.core.trace import Trace, TraceMeta

__all__ = ["DEFAULT_PROBE_OVERHEAD_US", "Recorder"]

#: Default CPU cost of one probe record, in µs.  Calibrated so workloads in
#: the §4 event-rate range (≲ 653 events/s) see ≲ 3 % recording overhead,
#: matching the paper's measurements on 1997 hardware (a probe does a
#: ``dlsym``-cached lookup, a ``gettimeofday``, a buffer append and a
#: return-address save — tens of µs then).
DEFAULT_PROBE_OVERHEAD_US = 15


class Recorder:
    """In-memory event collection for one monitored execution.

    Parameters
    ----------
    program:
        Name stored in the trace metadata.
    overhead_us:
        CPU time each record costs the monitored program.  Set to 0 for an
        idealised (intrusion-free) recording — the §4 overhead experiment
        compares the two.
    """

    def __init__(
        self,
        program: str = "a.out",
        *,
        overhead_us: int = DEFAULT_PROBE_OVERHEAD_US,
    ):
        if overhead_us < 0:
            raise RecorderError(f"negative probe overhead {overhead_us}")
        self.program = program
        self._overhead_us = overhead_us
        self._records: List[EventRecord] = []
        self._thread_functions: Dict[int, str] = {}
        self._finalized: Optional[Trace] = None

    # -- ProbeAPI --------------------------------------------------------

    @property
    def overhead_us(self) -> int:
        return self._overhead_us

    def record(self, rec: EventRecord) -> None:
        if self._finalized is not None:
            raise RecorderError("recording after the log was finalized")
        self._records.append(rec)

    def note_thread_function(self, tid: int, func_name: str) -> None:
        # the real Recorder records the thr_create function pointer and
        # resolves it to a name with the debugger (§3.1)
        self._thread_functions[tid] = func_name

    # -- finalisation ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def trace(self, *, validate: bool = True) -> Trace:
        """Finalize and return the recorded information (fig. 1 (d))."""
        if self._finalized is None:
            meta = TraceMeta(
                program=self.program,
                thread_functions=dict(self._thread_functions),
                probe_overhead_us=self._overhead_us,
            )
            self._finalized = Trace(self._records, meta, validate=validate)
        return self._finalized
