"""The log-file format ("recorded information", fig. 1 (d)).

A versioned, line-oriented text format close to the listing in the paper's
fig. 2.  One record per line::

    0.000113 T1 ret thr_create target=T4 arg=0 status=ok src=ex.c|12|main

* column 1 — timestamp in seconds with µs resolution (``format_us``),
* column 2 — thread id (``T`` + integer),
* column 3 — phase (``call`` / ``ret``),
* column 4 — primitive name,
* remaining columns — ``key=value`` attributes: ``obj`` / ``obj2``
  (``kind:name``), ``target`` (``T`` + id), ``arg`` (int), ``status``,
  and ``src`` (``file|line|function``, percent-encoded).

Header lines start with ``#`` and carry the metadata: format version,
program name, probe overhead and the ``thr_create`` function-name table
resolved by the debugger in the real tool (§3.1).

§4 reports log sizes (Ocean: 1.4 MB) and notes they can reach 15 MB for
long fine-grained runs; :func:`dumps`/:func:`loads` are the size and
round-trip surface those experiments measure.
"""

from __future__ import annotations

import io
import urllib.parse
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.core.errors import LogFormatError
from repro.core.events import EventRecord, Phase, SourceLocation, Status
from repro.recorder.posix import primitive_for_name, to_posix_name
from repro.core.ids import SyncObjectId, ThreadId
from repro.core.timebase import US_PER_SECOND, format_us
from repro.core.trace import Trace, TraceMeta

__all__ = ["FORMAT_VERSION", "dump", "dumps", "load", "loads"]

FORMAT_VERSION = 1

#: Callback a lenient parse uses to report a tolerated problem instead of
#: raising: ``on_repair(kind, detail)``.
RepairHook = Callable[[str, str], None]

_PHASES_BY_NAME = {p.value: p for p in Phase}
_STATUS_BY_NAME = {s.value: s for s in Status}


# ---------------------------------------------------------------------------
# serialisation
# ---------------------------------------------------------------------------


def _encode_source(src: SourceLocation) -> str:
    quote = urllib.parse.quote
    return f"{quote(src.file, safe='/.')}|{src.line}|{quote(src.function, safe='')}"


def _decode_source(text: str, lineno: int, line: str = "") -> SourceLocation:
    parts = text.split("|")
    if len(parts) != 3:
        raise _fail(f"bad src field {text!r}", lineno, line, text)
    unquote = urllib.parse.unquote
    try:
        src_line = int(parts[1])
    except ValueError as exc:
        raise _fail(f"bad src line number {parts[1]!r}", lineno, line, parts[1]) from exc
    return SourceLocation(file=unquote(parts[0]), line=src_line, function=unquote(parts[2]))


def _record_line(rec: EventRecord, *, posix_names: bool = False) -> str:
    name = to_posix_name(rec.primitive) if posix_names else rec.primitive.value
    fields = [
        format_us(rec.time_us),
        f"T{int(rec.tid)}",
        rec.phase.value,
        name,
    ]
    if rec.obj is not None:
        fields.append(f"obj={rec.obj.kind}:{rec.obj.name}")
    if rec.obj2 is not None:
        fields.append(f"obj2={rec.obj2.kind}:{rec.obj2.name}")
    if rec.target is not None:
        fields.append(f"target=T{int(rec.target)}")
    if rec.arg is not None:
        fields.append(f"arg={rec.arg}")
    if rec.status is not None:
        fields.append(f"status={rec.status.value}")
    if rec.source is not None:
        fields.append(f"src={_encode_source(rec.source)}")
    return " ".join(fields)


def dumps(trace: Trace, *, posix_names: bool = False) -> str:
    """Serialise a trace to log-file text.

    ``posix_names=True`` renders primitives under their POSIX spellings
    (``pthread_mutex_lock`` ...) — the §6 portability hook; the parser
    accepts both conventions either way.
    """
    out = io.StringIO()
    out.write(f"# vppb-log {FORMAT_VERSION}\n")
    out.write(f"# program: {trace.meta.program}\n")
    out.write(f"# probe-overhead-us: {trace.meta.probe_overhead_us}\n")
    for tid, func in sorted(trace.meta.thread_functions.items()):
        out.write(f"# thread-function: {tid} {urllib.parse.quote(func, safe='')}\n")
    if trace.meta.comment:
        out.write(f"# comment: {trace.meta.comment}\n")
    for rec in trace:
        out.write(_record_line(rec, posix_names=posix_names))
        out.write("\n")
    return out.getvalue()


def dump(trace: Trace, path: Union[str, Path]) -> int:
    """Write the log file; returns its size in bytes (§4 statistic)."""
    text = dumps(trace)
    data = text.encode()
    Path(path).write_bytes(data)
    return len(data)


# ---------------------------------------------------------------------------
# parsing
# ---------------------------------------------------------------------------


def _fail(message: str, lineno: int, line: str, token: Optional[str] = None) -> LogFormatError:
    """Build a LogFormatError carrying the line text and a caret column."""
    column = None
    if token:
        pos = line.find(token)
        if pos >= 0:
            column = pos
    return LogFormatError(message, lineno=lineno, line=line, column=column)


def _parse_time(text: str, lineno: int, line: str) -> int:
    try:
        if "." in text:
            whole, frac = text.split(".", 1)
            frac = (frac + "000000")[:6]
            value = int(whole) * US_PER_SECOND
            value += -int(frac) if whole.startswith("-") else int(frac)
            return value
        return int(text) * US_PER_SECOND
    except ValueError as exc:
        raise _fail(f"bad timestamp {text!r}", lineno, line, text) from exc


def _parse_tid(text: str, lineno: int, line: str) -> ThreadId:
    if not text.startswith("T"):
        raise _fail(f"bad thread id {text!r}", lineno, line, text)
    try:
        return ThreadId(int(text[1:]))
    except ValueError as exc:
        raise _fail(f"bad thread id {text!r}", lineno, line, text) from exc


def _parse_obj(text: str, lineno: int, line: str) -> SyncObjectId:
    kind, sep, name = text.partition(":")
    if not sep or not kind:
        raise _fail(f"bad object id {text!r}", lineno, line, text)
    return SyncObjectId(kind, name)


def _parse_record(
    line: str, lineno: int, *, on_repair: Optional[RepairHook] = None
) -> EventRecord:
    """Parse one record line.

    With ``on_repair`` set (lenient mode), attribute-level damage —
    unknown attribute keys, unparsable attribute values, a negative
    timestamp — is reported through the hook and skipped/clamped instead
    of raising; only damage to the four mandatory columns still raises.
    """
    fields = line.split()
    if len(fields) < 4:
        raise LogFormatError("record needs at least 4 fields", lineno=lineno, line=line)
    time_us = _parse_time(fields[0], lineno, line)
    if time_us < 0:
        if on_repair is None:
            raise _fail(f"negative timestamp {fields[0]!r}", lineno, line, fields[0])
        on_repair("clamped-negative-timestamp", f"{fields[0]} -> 0.000000")
        time_us = 0
    tid = _parse_tid(fields[1], lineno, line)
    phase = _PHASES_BY_NAME.get(fields[2])
    if phase is None:
        raise _fail(f"unknown phase {fields[2]!r}", lineno, line, fields[2])
    primitive = primitive_for_name(fields[3])
    if primitive is None:
        raise _fail(f"unknown primitive {fields[3]!r}", lineno, line, fields[3])

    obj = obj2 = None
    target = None
    arg = None
    status = None
    source = None
    for token in fields[4:]:
        key, sep, value = token.partition("=")
        try:
            if not sep:
                raise _fail(f"bad attribute {token!r}", lineno, line, token)
            if key == "obj":
                obj = _parse_obj(value, lineno, line)
            elif key == "obj2":
                obj2 = _parse_obj(value, lineno, line)
            elif key == "target":
                target = _parse_tid(value, lineno, line)
            elif key == "arg":
                try:
                    arg = int(value)
                except ValueError as exc:
                    raise _fail(f"bad arg {value!r}", lineno, line, value) from exc
            elif key == "status":
                status = _STATUS_BY_NAME.get(value)
                if status is None:
                    raise _fail(f"unknown status {value!r}", lineno, line, value)
            elif key == "src":
                source = _decode_source(value, lineno, line)
            else:
                raise _fail(f"unknown attribute key {key!r}", lineno, line, key)
        except LogFormatError as exc:
            if on_repair is None:
                raise
            on_repair("skipped-attribute", exc.message)
    return EventRecord(
        time_us=time_us,
        tid=tid,
        phase=phase,
        primitive=primitive,
        obj=obj,
        obj2=obj2,
        target=target,
        arg=arg,
        status=status,
        source=source,
    )


@dataclass
class _HeaderAcc:
    """Metadata accumulated from ``#`` header lines during a parse."""

    program: str = "a.out"
    overhead: int = 0
    comment: str = ""
    functions: Dict[int, str] = field(default_factory=dict)
    saw_version: bool = False

    def meta(self) -> TraceMeta:
        return TraceMeta(
            program=self.program,
            thread_functions=self.functions,
            probe_overhead_us=self.overhead,
            comment=self.comment,
        )


def _parse_header_line(
    acc: _HeaderAcc, line: str, lineno: int, *, on_repair: Optional[RepairHook] = None
) -> None:
    """Apply one ``#`` line to *acc* (lenient mode reports and ignores damage)."""
    body = line[1:].strip()
    try:
        if body.startswith("vppb-log"):
            try:
                version = int(body.split()[1])
            except (IndexError, ValueError) as exc:
                raise _fail("bad version header", lineno, line) from exc
            if version != FORMAT_VERSION:
                raise _fail(f"unsupported log version {version}", lineno, line, str(version))
            if acc.saw_version and on_repair is not None:
                on_repair("duplicate-header", "repeated '# vppb-log' line")
            acc.saw_version = True
        elif body.startswith("program:"):
            acc.program = body.split(":", 1)[1].strip()
        elif body.startswith("probe-overhead-us:"):
            try:
                acc.overhead = int(body.split(":", 1)[1].strip())
            except ValueError as exc:
                raise _fail("bad probe overhead", lineno, line) from exc
        elif body.startswith("thread-function:"):
            rest = body.split(":", 1)[1].split()
            if len(rest) != 2:
                raise _fail("bad thread-function header", lineno, line)
            try:
                acc.functions[int(rest[0])] = urllib.parse.unquote(rest[1])
            except ValueError as exc:
                raise _fail("bad thread-function id", lineno, line, rest[0]) from exc
        elif body.startswith("comment:"):
            acc.comment = body.split(":", 1)[1].strip()
        # unknown comment lines are tolerated (forward compatibility)
    except LogFormatError as exc:
        if on_repair is None:
            raise
        on_repair("ignored-bad-header", exc.message)


def loads(
    text: str,
    *,
    validate: bool = True,
    mode: str = "strict",
    source: Optional[str] = None,
) -> Trace:
    """Parse log-file text back into a :class:`Trace`.

    ``mode="strict"`` (default) raises :class:`LogFormatError` on the
    first problem; ``mode="lenient"`` runs the salvage pipeline
    (:mod:`repro.recorder.salvage`) and returns the best-effort trace —
    use :func:`repro.recorder.salvage.salvage_loads` to also get the
    :class:`~repro.recorder.salvage.SalvageReport`.  ``source`` (a file
    path or label) is attached to error messages.
    """
    if mode == "lenient":
        from repro.recorder.salvage import salvage_loads

        return salvage_loads(text, source=source, validate=validate).trace
    if mode != "strict":
        raise ValueError(f"unknown mode {mode!r} (expected 'strict' or 'lenient')")

    acc = _HeaderAcc()
    records: List[EventRecord] = []
    try:
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                _parse_header_line(acc, line, lineno)
                continue
            records.append(_parse_record(line, lineno))
        if not acc.saw_version:
            raise LogFormatError("missing '# vppb-log <version>' header", lineno=1)
    except LogFormatError as exc:
        exc.source = source
        raise
    return Trace(records, acc.meta(), validate=validate)


def load(
    path: Union[str, Path],
    *,
    validate: bool = True,
    mode: str = "strict",
) -> Trace:
    """Read a log file from disk.

    Accepts the same ``mode``/``validate`` keywords as :func:`loads` and
    propagates the file path into any error message.
    """
    return loads(
        Path(path).read_text(), validate=validate, mode=mode, source=str(path)
    )
