"""The log-file format ("recorded information", fig. 1 (d)).

A versioned, line-oriented text format close to the listing in the paper's
fig. 2.  One record per line::

    0.000113 T1 ret thr_create target=T4 arg=0 status=ok src=ex.c|12|main

* column 1 — timestamp in seconds with µs resolution (``format_us``),
* column 2 — thread id (``T`` + integer),
* column 3 — phase (``call`` / ``ret``),
* column 4 — primitive name,
* remaining columns — ``key=value`` attributes: ``obj`` / ``obj2``
  (``kind:name``), ``target`` (``T`` + id), ``arg`` (int), ``status``,
  and ``src`` (``file|line|function``, percent-encoded).

Header lines start with ``#`` and carry the metadata: format version,
program name, probe overhead and the ``thr_create`` function-name table
resolved by the debugger in the real tool (§3.1).

§4 reports log sizes (Ocean: 1.4 MB) and notes they can reach 15 MB for
long fine-grained runs; :func:`dumps`/:func:`loads` are the size and
round-trip surface those experiments measure.
"""

from __future__ import annotations

import io
import urllib.parse
from pathlib import Path
from typing import Dict, List, Union

from repro.core.errors import LogFormatError
from repro.core.events import EventRecord, Phase, SourceLocation, Status
from repro.recorder.posix import primitive_for_name, to_posix_name
from repro.core.ids import SyncObjectId, ThreadId
from repro.core.timebase import US_PER_SECOND, format_us
from repro.core.trace import Trace, TraceMeta

__all__ = ["FORMAT_VERSION", "dump", "dumps", "load", "loads"]

FORMAT_VERSION = 1

_PHASES_BY_NAME = {p.value: p for p in Phase}
_STATUS_BY_NAME = {s.value: s for s in Status}


# ---------------------------------------------------------------------------
# serialisation
# ---------------------------------------------------------------------------


def _encode_source(src: SourceLocation) -> str:
    quote = urllib.parse.quote
    return f"{quote(src.file, safe='/.')}|{src.line}|{quote(src.function, safe='')}"


def _decode_source(text: str, lineno: int) -> SourceLocation:
    parts = text.split("|")
    if len(parts) != 3:
        raise LogFormatError(f"bad src field {text!r}", lineno=lineno)
    unquote = urllib.parse.unquote
    try:
        line = int(parts[1])
    except ValueError as exc:
        raise LogFormatError(f"bad src line number {parts[1]!r}", lineno=lineno) from exc
    return SourceLocation(file=unquote(parts[0]), line=line, function=unquote(parts[2]))


def _record_line(rec: EventRecord, *, posix_names: bool = False) -> str:
    name = to_posix_name(rec.primitive) if posix_names else rec.primitive.value
    fields = [
        format_us(rec.time_us),
        f"T{int(rec.tid)}",
        rec.phase.value,
        name,
    ]
    if rec.obj is not None:
        fields.append(f"obj={rec.obj.kind}:{rec.obj.name}")
    if rec.obj2 is not None:
        fields.append(f"obj2={rec.obj2.kind}:{rec.obj2.name}")
    if rec.target is not None:
        fields.append(f"target=T{int(rec.target)}")
    if rec.arg is not None:
        fields.append(f"arg={rec.arg}")
    if rec.status is not None:
        fields.append(f"status={rec.status.value}")
    if rec.source is not None:
        fields.append(f"src={_encode_source(rec.source)}")
    return " ".join(fields)


def dumps(trace: Trace, *, posix_names: bool = False) -> str:
    """Serialise a trace to log-file text.

    ``posix_names=True`` renders primitives under their POSIX spellings
    (``pthread_mutex_lock`` ...) — the §6 portability hook; the parser
    accepts both conventions either way.
    """
    out = io.StringIO()
    out.write(f"# vppb-log {FORMAT_VERSION}\n")
    out.write(f"# program: {trace.meta.program}\n")
    out.write(f"# probe-overhead-us: {trace.meta.probe_overhead_us}\n")
    for tid, func in sorted(trace.meta.thread_functions.items()):
        out.write(f"# thread-function: {tid} {urllib.parse.quote(func, safe='')}\n")
    if trace.meta.comment:
        out.write(f"# comment: {trace.meta.comment}\n")
    for rec in trace:
        out.write(_record_line(rec, posix_names=posix_names))
        out.write("\n")
    return out.getvalue()


def dump(trace: Trace, path: Union[str, Path]) -> int:
    """Write the log file; returns its size in bytes (§4 statistic)."""
    text = dumps(trace)
    data = text.encode()
    Path(path).write_bytes(data)
    return len(data)


# ---------------------------------------------------------------------------
# parsing
# ---------------------------------------------------------------------------


def _parse_time(text: str, lineno: int) -> int:
    try:
        if "." in text:
            whole, frac = text.split(".", 1)
            frac = (frac + "000000")[:6]
            return int(whole) * US_PER_SECOND + int(frac)
        return int(text) * US_PER_SECOND
    except ValueError as exc:
        raise LogFormatError(f"bad timestamp {text!r}", lineno=lineno) from exc


def _parse_tid(text: str, lineno: int) -> ThreadId:
    if not text.startswith("T"):
        raise LogFormatError(f"bad thread id {text!r}", lineno=lineno)
    try:
        return ThreadId(int(text[1:]))
    except ValueError as exc:
        raise LogFormatError(f"bad thread id {text!r}", lineno=lineno) from exc


def _parse_obj(text: str, lineno: int) -> SyncObjectId:
    kind, sep, name = text.partition(":")
    if not sep or not kind:
        raise LogFormatError(f"bad object id {text!r}", lineno=lineno)
    return SyncObjectId(kind, name)


def _parse_record(line: str, lineno: int) -> EventRecord:
    fields = line.split()
    if len(fields) < 4:
        raise LogFormatError("record needs at least 4 fields", lineno=lineno, line=line)
    time_us = _parse_time(fields[0], lineno)
    tid = _parse_tid(fields[1], lineno)
    phase = _PHASES_BY_NAME.get(fields[2])
    if phase is None:
        raise LogFormatError(f"unknown phase {fields[2]!r}", lineno=lineno)
    primitive = primitive_for_name(fields[3])
    if primitive is None:
        raise LogFormatError(f"unknown primitive {fields[3]!r}", lineno=lineno)

    obj = obj2 = None
    target = None
    arg = None
    status = None
    source = None
    for field in fields[4:]:
        key, sep, value = field.partition("=")
        if not sep:
            raise LogFormatError(f"bad attribute {field!r}", lineno=lineno)
        if key == "obj":
            obj = _parse_obj(value, lineno)
        elif key == "obj2":
            obj2 = _parse_obj(value, lineno)
        elif key == "target":
            target = _parse_tid(value, lineno)
        elif key == "arg":
            try:
                arg = int(value)
            except ValueError as exc:
                raise LogFormatError(f"bad arg {value!r}", lineno=lineno) from exc
        elif key == "status":
            status = _STATUS_BY_NAME.get(value)
            if status is None:
                raise LogFormatError(f"unknown status {value!r}", lineno=lineno)
        elif key == "src":
            source = _decode_source(value, lineno)
        else:
            raise LogFormatError(f"unknown attribute key {key!r}", lineno=lineno)
    return EventRecord(
        time_us=time_us,
        tid=tid,
        phase=phase,
        primitive=primitive,
        obj=obj,
        obj2=obj2,
        target=target,
        arg=arg,
        status=status,
        source=source,
    )


def loads(text: str, *, validate: bool = True) -> Trace:
    """Parse log-file text back into a :class:`Trace`."""
    program = "a.out"
    overhead = 0
    comment = ""
    functions: Dict[int, str] = {}
    records: List[EventRecord] = []
    saw_version = False

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            body = line[1:].strip()
            if body.startswith("vppb-log"):
                try:
                    version = int(body.split()[1])
                except (IndexError, ValueError) as exc:
                    raise LogFormatError("bad version header", lineno=lineno) from exc
                if version != FORMAT_VERSION:
                    raise LogFormatError(
                        f"unsupported log version {version}", lineno=lineno
                    )
                saw_version = True
            elif body.startswith("program:"):
                program = body.split(":", 1)[1].strip()
            elif body.startswith("probe-overhead-us:"):
                try:
                    overhead = int(body.split(":", 1)[1].strip())
                except ValueError as exc:
                    raise LogFormatError("bad probe overhead", lineno=lineno) from exc
            elif body.startswith("thread-function:"):
                rest = body.split(":", 1)[1].split()
                if len(rest) != 2:
                    raise LogFormatError("bad thread-function header", lineno=lineno)
                try:
                    functions[int(rest[0])] = urllib.parse.unquote(rest[1])
                except ValueError as exc:
                    raise LogFormatError("bad thread-function id", lineno=lineno) from exc
            elif body.startswith("comment:"):
                comment = body.split(":", 1)[1].strip()
            # unknown comment lines are tolerated (forward compatibility)
            continue
        records.append(_parse_record(line, lineno))

    if not saw_version:
        raise LogFormatError("missing '# vppb-log <version>' header", lineno=1)
    meta = TraceMeta(
        program=program,
        thread_functions=functions,
        probe_overhead_us=overhead,
        comment=comment,
    )
    return Trace(records, meta, validate=validate)


def load(path: Union[str, Path], *, validate: bool = True) -> Trace:
    """Read a log file from disk."""
    return loads(Path(path).read_text(), validate=validate)
