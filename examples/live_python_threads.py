"""Recording a *real* Python threaded program (the LD_PRELOAD analogue).

CPython's GIL makes any threaded Python program a genuine "monitored
uni-processor execution": one kernel thread progresses at a time,
switching at blocking points — exactly the regime the paper's Recorder
enforces with its single LWP.  This example interposes on live
``threading`` objects, records a pipeline of stages hand-ing work through
a bounded queue, and predicts how the program would behave on a
multiprocessor without the GIL.

Run:  python examples/live_python_threads.py
"""

import time

from repro import SimConfig, predict, predict_speedup
from repro.analysis import top_bottleneck
from repro.recorder import PyThreadsRecorder, logfile
from repro.visualizer import render_flow_ascii


def spin(ms: float) -> None:
    """Busy CPU work (holds the GIL)."""
    deadline = time.perf_counter() + ms / 1000.0
    x = 0
    while time.perf_counter() < deadline:
        x += 1


def main() -> None:
    rec = PyThreadsRecorder("pipeline")
    items = rec.Semaphore(0, "items")
    done = rec.Semaphore(0, "done")
    queue_lock = rec.Lock("queue")

    N = 6

    def stage_one():
        for _ in range(N):
            spin(5)  # produce
            with queue_lock:
                spin(0.2)  # enqueue
            items.release()

    def stage_two():
        for _ in range(N):
            items.acquire()
            with queue_lock:
                spin(0.2)  # dequeue
            spin(5)  # consume
            done.release()

    t1 = rec.Thread(target=stage_one)
    t2 = rec.Thread(target=stage_two)
    with rec.collecting():
        t1.start()
        t2.start()
        t1.join()
        t2.join()

    trace = rec.trace()
    print(f"recorded {len(trace)} events from live Python threads")
    print("first records:")
    for line in logfile.dumps(trace).splitlines()[:12]:
        print(" ", line)

    monitored_s = trace.duration_us / 1e6
    print(f"\nGIL-serialised wall time: {monitored_s:.3f} s")
    for cpus in (2, 4):
        pred = predict_speedup(trace, cpus)
        print(
            f"predicted without the GIL on {cpus} CPUs: "
            f"{pred.makespan_us / 1e6:.3f} s (speed-up {pred.speedup:.2f})"
        )

    result = predict(trace, SimConfig(cpus=2))
    print("\npredicted 2-CPU flow graph:")
    print(render_flow_ascii(result, width=76))
    bottleneck = top_bottleneck(result)
    if bottleneck:
        print(f"\nworst blocking object: {bottleneck.obj}")


if __name__ == "__main__":
    main()
