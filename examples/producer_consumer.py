"""The §5 performance-tuning walkthrough, scripted.

Reproduces the case study: a producer-consumer program (150 producers x
10 items, 75 consumers) is predicted to run "only 2.2 % faster on 8
CPUs"; the Visualizer (here: the bottleneck analysis plus the flow graph)
pins the blame on the single buffer mutex; the tuned version (100 buffers,
split insert/fetch mutexes) is predicted at ~7.75x and validates at
~7.90x on the ground-truth machine.

Run:  python examples/producer_consumer.py [--scale 0.3]
"""

import argparse

from repro import SimConfig, measure_speedup, predict, predict_speedup, record_program
from repro.analysis import top_bottleneck
from repro.visualizer import render_flow_ascii
from repro.workloads.prodcons import make_naive, make_tuned


def investigate(name: str, program, cpus: int = 8):
    print(f"--- {name} ---")
    run = record_program(program)
    prediction = predict_speedup(run.trace, cpus)
    print(
        f"monitored events: {run.n_events}, predicted speed-up on "
        f"{cpus} CPUs: {prediction.speedup:.2f}"
    )
    result = predict(run.trace, SimConfig(cpus=cpus))
    bottleneck = top_bottleneck(result)
    if bottleneck is not None:
        print(
            f"worst blocking object: {bottleneck.obj} — "
            f"{bottleneck.total_blocked_us / 1e6:.3f} s blocked across "
            f"{bottleneck.blocking_operations} operations"
        )
    return run, prediction, result


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--scale",
        type=float,
        default=0.3,
        help="population scale (1.0 = the paper's 150/75 threads)",
    )
    parser.add_argument("--cpus", type=int, default=8)
    args = parser.parse_args()

    # step 1: the initial program barely speeds up
    naive = make_naive(scale=args.scale)
    _, naive_pred, naive_result = investigate("initial program", naive, args.cpus)

    # step 2: look at the flow graph — "no threads are actually running
    # in parallel ... all threads are being blocked by a wait on a mutex"
    print("\nfirst threads of the flow graph (note the serialisation):")
    text = render_flow_ascii(
        naive_result,
        width=76,
        window_end_us=naive_result.makespan_us // 8,
        compress_threads=True,
    )
    print("\n".join(text.splitlines()[:10]))

    # step 3: apply the paper's fix and re-run the workflow
    tuned = make_tuned(scale=args.scale)
    _, tuned_pred, _ = investigate("\ntuned program (100 buffers)", tuned, args.cpus)

    # step 4: validate the prediction on the ground-truth machine
    real = measure_speedup(tuned, args.cpus, runs=5)
    error = (real.speedup - tuned_pred.speedup) / real.speedup
    print(
        f"validation: real speed-up {real.speedups.brief()} vs predicted "
        f"{tuned_pred.speedup:.2f} (error {error * 100:.1f}%)"
    )
    print(
        f"\nsummary: tuning took the program from {naive_pred.speedup:.2f}x "
        f"to {tuned_pred.speedup:.2f}x on {args.cpus} CPUs"
    )


if __name__ == "__main__":
    main()
