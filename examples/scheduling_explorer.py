"""Exploring the §3.2 scheduling knobs from one recorded log.

The whole point of VPPB is that a single monitored run can be re-simulated
under any machine and scheduling configuration.  This example records one
program and then answers a battery of what-if questions:

* how does the LWP pool size throttle the program?
* what does binding threads to CPUs do (load balancing by hand)?
* how much does inter-CPU communication delay cost?
* do thread priorities rearrange the execution?
* what do bound threads' higher synchronisation costs (x6.7 creation,
  x5.9 sync) do to a fine-grained program?

Run:  python examples/scheduling_explorer.py
"""

from repro import (
    Program,
    SimConfig,
    ThreadPolicy,
    compile_trace,
    predict,
    record_program,
)
from repro.program.ops import Compute, MutexLock, MutexUnlock, ThrCreate, ThrJoin


def worker(ctx):
    for _ in range(20):
        yield Compute(2_000)
        yield MutexLock("shared")
        yield Compute(100)
        yield MutexUnlock("shared")


def main_thread(ctx):
    tids = []
    for _ in range(4):
        tids.append((yield ThrCreate(worker)))
    for tid in tids:
        yield ThrJoin(tid)


def show(label: str, makespan_us: int, base_us: int) -> None:
    print(f"  {label:<46} {makespan_us/1e3:>9.2f} ms  ({base_us/makespan_us:.2f}x)")


def main() -> None:
    program = Program("explorer", main_thread)
    run = record_program(program)
    plan = compile_trace(run.trace)
    base = run.monitored_makespan_us
    print(f"monitored uni-processor run: {base/1e3:.2f} ms\n")

    print("LWP pool size on a 4-CPU machine (thr_setconcurrency ignored):")
    for lwps in (1, 2, 4, None):
        cfg = SimConfig(cpus=4, lwps=lwps)
        res = predict(run.trace, cfg, plan=plan)
        show(f"lwps={'on-demand' if lwps is None else lwps}", res.makespan_us, base)

    print("\nCPU binding (§3.2: 'determine which thread to bind to which CPU'):")
    spread = {4 + i: ThreadPolicy(cpu=i % 2) for i in range(4)}
    piled = {4 + i: ThreadPolicy(cpu=0) for i in range(4)}
    for label, policies in (("4 threads over 2 CPUs", spread), ("all on CPU 0", piled)):
        cfg = SimConfig(cpus=2, thread_policies=policies)
        res = predict(run.trace, cfg, plan=plan)
        show(label, res.makespan_us, base)

    print("\ninter-CPU communication delay (4 CPUs):")
    for delay in (0, 50, 500, 5_000):
        cfg = SimConfig(cpus=4, comm_delay_us=delay)
        res = predict(run.trace, cfg, plan=plan)
        show(f"comm delay {delay} us", res.makespan_us, base)

    print("\nthread priorities (1 CPU, 1 LWP: the queue order flips):")
    for label, policies in (
        ("all equal (T7 runs last)", {}),
        ("T7 prioritised (runs first)", {7: ThreadPolicy(priority=10)}),
    ):
        cfg = SimConfig(cpus=1, lwps=1, thread_policies=policies)
        res = predict(run.trace, cfg, plan=plan)
        t7 = next(s for t, s in res.summaries.items() if int(t) == 7)
        print(
            f"  {label:<46} T7 finishes at {t7.end_us/1e3:>8.2f} ms "
            f"(makespan {res.makespan_us/1e3:.2f} ms)"
        )

    print("\nreal-time class (what if the LAST thread were RT?):")
    for label, policies in (
        ("all time-sharing", {}),
        ("T7 real-time", {7: ThreadPolicy(rt_priority=10)}),
    ):
        cfg = SimConfig(cpus=1, lwps=1, thread_policies=policies)
        res = predict(run.trace, cfg, plan=plan)
        t7 = next(s for t, s in res.summaries.items() if int(t) == 7)
        print(
            f"  {label:<46} T7 finishes at {t7.end_us/1e3:>8.2f} ms "
            f"(makespan {res.makespan_us/1e3:.2f} ms)"
        )

    print("\nbinding threads to LWPs (x6.7 creation, x5.9 sync costs):")
    for label, policies in (
        ("all unbound", {}),
        ("all bound", {4 + i: ThreadPolicy(bound=True) for i in range(4)}),
    ):
        cfg = SimConfig(cpus=4, thread_policies=policies)
        res = predict(run.trace, cfg, plan=plan)
        show(label, res.makespan_us, base)


if __name__ == "__main__":
    main()
