"""Capacity planning from one recorded run (the what-if extension).

VPPB's promise is "inspect the behaviour ... as if it had been run on a
multiprocessor without even having one".  This example pushes that to its
practical conclusion: given one monitored run of a mixed CPU/I-O service,
answer the purchasing question — how many processors is this program
worth? — and show where the remaining time goes.

Run:  python examples/capacity_planning.py
"""

from repro import Program, SimConfig, predict, record_program
from repro.analysis import find_knee, lwp_sensitivity, parallelism_profile, speedup_curve
from repro.program.ops import Compute, IoWait, MutexLock, MutexUnlock, ThrCreate, ThrJoin
from repro.visualizer import format_thread_stats


def worker(ctx):
    for _ in range(5):
        yield IoWait(6_000)  # fetch a request
        yield Compute(9_000)  # handle it
        yield MutexLock("journal")
        yield Compute(400)  # append to the shared journal
        yield MutexUnlock("journal")


def main_thread(ctx):
    tids = []
    for _ in range(6):
        tids.append((yield ThrCreate(worker)))
    for tid in tids:
        yield ThrJoin(tid)


def main() -> None:
    program = Program("service", main_thread)
    run = record_program(program)
    print(
        f"recorded {run.n_events} events; monitored run "
        f"{run.monitored_makespan_us / 1e6:.3f} s\n"
    )

    # how much parallelism does the trace even contain?
    profile = parallelism_profile(run.trace)
    print(
        f"inherent parallelism: average {profile.average_parallelism:.2f}, "
        f"peak {profile.peak_parallelism}, serial fraction "
        f"{profile.serial_fraction:.0%}\n"
    )

    # the speed-up curve, 1..8 CPUs
    print("CPUs  predicted speed-up")
    for pred in speedup_curve(run.trace, 8):
        bar = "#" * round(pred.speedup * 8)
        print(f"{pred.cpus:>4}  {pred.speedup:>5.2f}  {bar}")

    # the purchasing answer
    knee = find_knee(run.trace, target_fraction=0.85)
    print(
        f"\nrecommendation: {knee.cpus} CPU(s) reach {knee.speedup:.2f}x of "
        f"an achievable {knee.bound:.2f}x ({knee.fraction_of_bound:.0%})"
    )

    # does the LWP pool matter at that size?
    sens = lwp_sensitivity(run.trace, knee.cpus, lwp_counts=(1, 2, knee.cpus, None))
    print("\nLWP pool sensitivity at that machine size:")
    for lwps, makespan in sens.items():
        label = "on-demand" if lwps is None else str(lwps)
        print(f"  lwps={label:<10} {makespan / 1e3:8.2f} ms")

    # and where the time goes on the recommended machine
    result = predict(run.trace, SimConfig(cpus=knee.cpus))
    print(f"\nper-thread decomposition on {knee.cpus} CPU(s):")
    print(format_thread_stats(result))


if __name__ == "__main__":
    main()
