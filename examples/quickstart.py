"""Quickstart: the paper's fig. 2 example, end to end.

Builds the small program from fig. 2 (``main`` creates ``thr_a`` and
``thr_b`` and joins them), performs the monitored uni-processor execution,
prints the recorded log (compare with the right-hand side of fig. 2),
predicts the two-processor execution and draws both §3.3 graphs.

Run:  python examples/quickstart.py
"""

from repro import Program, SimConfig, predict, predict_speedup, record_program
from repro.core.timebase import format_us
from repro.program.ops import Compute, ThrCreate, ThrExit, ThrJoin
from repro.recorder import logfile
from repro.visualizer import EventInspector, render_ascii


def thread(ctx):
    """The worker: fig. 2's ``void* thread(void*) { work(); }``."""
    yield Compute(100_000)  # work(): 100 ms of CPU


def main_thread(ctx):
    thr_a = yield ThrCreate(thread, name="thread")
    thr_b = yield ThrCreate(thread, name="thread")
    yield ThrJoin(thr_a)
    yield ThrJoin(thr_b)
    yield ThrExit()


def main() -> None:
    program = Program("fig2-example", main_thread)

    # (b)-(d): monitored uni-processor execution -> recorded information
    run = record_program(program)
    print("=== recorded log (fig. 2, right) ===")
    print(logfile.dumps(run.trace))

    # (e)-(g): simulate a 2-processor machine
    prediction = predict_speedup(run.trace, cpus=2)
    print(f"monitored uni-processor run : {format_us(run.monitored_makespan_us)} s")
    print(f"predicted on 2 processors   : {format_us(prediction.makespan_us)} s")
    print(f"predicted speed-up          : {prediction.speedup:.2f}\n")

    # (h): visualize the predicted execution
    result = predict(run.trace, SimConfig(cpus=2))
    print("=== predicted execution (fig. 5 view) ===")
    print(render_ascii(result, width=78))

    # the §3.3 popup: inspect the join event the paper circles in fig. 5
    inspector = EventInspector(result)
    join = next(ev for ev in result.events if ev.primitive.value == "thr_join")
    print("\n=== event popup (the circled thr_join of fig. 5) ===")
    print(inspector.popup(join.index).describe())


if __name__ == "__main__":
    main()
