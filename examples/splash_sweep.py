"""Speed-up sweep over a SPLASH-2 kernel — one Table 1 row, interactively.

Records the chosen kernel once per processor count (the SPLASH-2 programs
create one thread per processor, so "one log file were made for each
processor setup", §4), predicts each speed-up, validates against five
seeded ground-truth runs, and writes the predicted 8-processor execution
as an SVG.

Run:  python examples/splash_sweep.py [ocean|water|fft|radix|lu]
      [--scale 0.2] [--svg out.svg]
"""

import argparse

from repro import SimConfig, measure_speedup, predict, predict_speedup, record_program
from repro.visualizer import save_svg
from repro.workloads import PAPER_TABLE1, get_workload


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("kernel", nargs="?", default="ocean")
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--cpus", type=int, nargs="+", default=[2, 4, 8])
    parser.add_argument("--svg", default=None, help="write the predicted run as SVG")
    args = parser.parse_args()

    workload = get_workload(args.kernel)
    print(f"{workload.name}: {workload.description} (scale {args.scale})\n")

    # the sequential baseline (SPLASH speed-ups are vs the 1-thread run)
    sequential = workload.make_program(1, args.scale)
    baseline = record_program(sequential, overhead_us=0)
    print(
        f"sequential baseline: {baseline.monitored_makespan_us / 1e6:.2f} s "
        f"simulated"
    )

    paper = PAPER_TABLE1.get(workload.name)
    header = f"{'CPUs':>4}  {'predicted':>9}  {'real (min-mid-max)':>22}  {'error':>7}"
    if paper:
        header += f"  {'paper real':>10}"
    print(header)

    last_trace = None
    for cpus in args.cpus:
        program = workload.make_program(cpus, args.scale)
        run = record_program(program)
        last_trace = run.trace
        pred = predict_speedup(
            run.trace, cpus, baseline_us=baseline.monitored_makespan_us
        )
        real = measure_speedup(
            program, cpus, runs=5, baseline_program=sequential
        )
        error = (real.speedup - pred.speedup) / real.speedup
        line = (
            f"{cpus:>4}  {pred.speedup:>9.2f}  {real.speedups.brief():>22}  "
            f"{error * 100:>6.1f}%"
        )
        if paper and cpus in paper.real:
            line += f"  {paper.real[cpus]:>10.2f}"
        print(line)

    if args.svg and last_trace is not None:
        result = predict(last_trace, SimConfig(cpus=args.cpus[-1]))
        save_svg(
            result,
            args.svg,
            title=f"{workload.name} on {args.cpus[-1]} CPUs (predicted)",
            compress_threads=True,
        )
        print(f"\nwrote {args.svg}")


if __name__ == "__main__":
    main()
