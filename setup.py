"""Legacy setup shim.

Allows editable installs on systems without the ``wheel`` package (where
PEP 660 editable builds fail with "invalid command 'bdist_wheel'"):
``pip install -e . --no-use-pep517`` or ``python setup.py develop``.
All metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
